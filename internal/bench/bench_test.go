package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/workload"
)

func TestAllExperimentsMatchPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if e.ID == "A9" && raceEnabled {
				// A9 gates on latency shape; race instrumentation skews
				// timing too much to assert it. The serving CI job race-
				// tests admission and the server directly instead.
				t.Skip("latency-shape gate is not meaningful under -race")
			}
			r := e.Run()
			if r.ID != e.ID {
				t.Fatalf("result ID %q != registry ID %q", r.ID, e.ID)
			}
			if !r.ShapeOK {
				t.Fatalf("%s diverges from the paper: %s", e.ID, r.Shape)
			}
			if len(r.Rows) == 0 || len(r.Headers) == 0 {
				t.Fatalf("%s has no table", e.ID)
			}
		})
	}
}

func TestRunSimBasics(t *testing.T) {
	cfg := continuousWorkload(billing.Relaxed, 1)
	cfg.Duration = 20 * time.Minute
	res := RunSim(cfg)
	if res.Queries == 0 {
		t.Fatalf("no queries submitted")
	}
	if res.Finished+res.Failed != res.Queries {
		t.Fatalf("unsettled queries: %d finished, %d failed of %d", res.Finished, res.Failed, res.Queries)
	}
	if res.TotalCost <= 0 || res.VMCost <= 0 {
		t.Fatalf("costs not accrued: %+v", res)
	}
	if res.TotalCost < res.BaselineCost {
		t.Fatalf("total %f below baseline %f", res.TotalCost, res.BaselineCost)
	}
	if res.BytesScanned <= 0 {
		t.Fatalf("no bytes scanned")
	}
	if res.WallTime < cfg.Duration {
		t.Fatalf("wall time %v shorter than arrival window", res.WallTime)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	cfg := continuousWorkload(billing.Immediate, 9)
	cfg.Duration = 15 * time.Minute
	a := RunSim(cfg)
	b := RunSim(continuousWorkloadCopy(9))
	if a.Queries != b.Queries || a.TotalCost != b.TotalCost || a.CFQueries != b.CFQueries {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}

// continuousWorkloadCopy rebuilds the exact config (arrival processes hold
// rng state, so configs cannot be reused across runs).
func continuousWorkloadCopy(seed int64) SimConfig {
	cfg := continuousWorkload(billing.Immediate, seed)
	cfg.Duration = 15 * time.Minute
	return cfg
}

func TestPendingStatsPercentiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Second)
	}
	st := pendingStats(ds)
	if st.Count != 100 || st.Max != 100*time.Second {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 51*time.Second || st.P99 != 100*time.Second {
		t.Fatalf("percentiles = p50 %v p99 %v", st.P50, st.P99)
	}
	if pendingStats(nil).Count != 0 {
		t.Fatalf("empty stats wrong")
	}
}

func TestRenderProducesTable(t *testing.T) {
	r := Result{
		ID: "X", Title: "test", Paper: "claim",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		ShapeOK: true, Shape: "ok",
	}
	var sb strings.Builder
	Render(&sb, r)
	out := sb.String()
	for _, want := range []string{"== X: test ==", "claim", "333", "shape MATCHES: ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLevelMixedSimFinishes(t *testing.T) {
	cfg := continuousWorkload(billing.Immediate, 33)
	cfg.Duration = 20 * time.Minute
	cfg.Levels = workload.NewLevelMix(nil, 33)
	res := RunSim(cfg)
	if res.Failed != 0 {
		t.Fatalf("%d failures", res.Failed)
	}
	if len(res.Pending) == 0 {
		t.Fatalf("no pending stats")
	}
}
