//go:build race

package bench

// raceEnabled: this build is race-instrumented.
const raceEnabled = true
