package cache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/objstore"
)

// countingStore wraps a Store and counts the requests that reach it; an
// optional gate blocks ranged reads so tests can force request overlap.
type countingStore struct {
	objstore.Store
	gets, heads atomic.Int64
	gate        chan struct{} // when non-nil, GetRange blocks until closed
	entered     chan struct{} // when non-nil, signaled on GetRange entry
}

func (c *countingStore) GetRange(key string, off, length int64) ([]byte, error) {
	if c.entered != nil {
		c.entered <- struct{}{}
	}
	if c.gate != nil {
		<-c.gate
	}
	c.gets.Add(1)
	return c.Store.GetRange(key, off, length)
}

func (c *countingStore) Head(key string) (objstore.ObjectInfo, error) {
	c.heads.Add(1)
	return c.Store.Head(key)
}

func blob(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/7)
	}
	return b
}

// TestStoreContract checks that a CachingStore honors the same Store
// semantics as the raw backends (the objstore package's suite, adapted):
// round trips, overwrite visibility through invalidation, range
// semantics, missing-key errors and caller-mutation safety.
func TestStoreContract(t *testing.T) {
	s := New(objstore.NewMemory(), Config{})

	if _, err := s.Get("missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Errorf("Get(missing) err = %v, want ErrNotFound", err)
	}
	if _, err := s.Head("missing"); !errors.Is(err, objstore.ErrNotFound) {
		t.Errorf("Head(missing) err = %v, want ErrNotFound", err)
	}
	if err := s.Delete("missing"); err != nil {
		t.Errorf("Delete(missing) err = %v, want nil (S3 semantics)", err)
	}

	data := []byte("hello, columnar world")
	if err := s.Put("db/tbl/file-0.pxl", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("db/tbl/file-0.pxl")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}

	// Overwrite must be visible through the cache (Put invalidates).
	if err := s.Put("db/tbl/file-0.pxl", []byte("v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, _ = s.Get("db/tbl/file-0.pxl")
	if string(got) != "v2" {
		t.Fatalf("overwrite not visible through cache: %q", got)
	}
	if err := s.Put("db/tbl/file-0.pxl", data); err != nil {
		t.Fatal(err)
	}

	rng, err := s.GetRange("db/tbl/file-0.pxl", 7, 8)
	if err != nil || string(rng) != "columnar" {
		t.Fatalf("GetRange = %q, %v", rng, err)
	}
	rng, err = s.GetRange("db/tbl/file-0.pxl", 7, -1)
	if err != nil || string(rng) != "columnar world" {
		t.Fatalf("GetRange to end = %q, %v", rng, err)
	}
	if _, err := s.GetRange("db/tbl/file-0.pxl", 7, 1000); err == nil {
		t.Errorf("GetRange past end did not error")
	}
	if _, err := s.GetRange("db/tbl/file-0.pxl", -1, 2); err == nil {
		t.Errorf("GetRange negative offset did not error")
	}
	if rng, err = s.GetRange("db/tbl/file-0.pxl", int64(len(data)), 0); err != nil || len(rng) != 0 {
		t.Errorf("zero-length range at EOF = %q, %v", rng, err)
	}

	info, err := s.Head("db/tbl/file-0.pxl")
	if err != nil || info.Size != int64(len(data)) {
		t.Fatalf("Head = %+v, %v", info, err)
	}

	if err := s.Put("db/tbl/file-1.pxl", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("db/other/file-9.pxl", []byte("y")); err != nil {
		t.Fatal(err)
	}
	infos, err := s.List("db/tbl/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("List = %v, %v", infos, err)
	}

	// Delete invalidates: the cached entry must not resurrect the object.
	if _, err := s.Get("db/tbl/file-1.pxl"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("db/tbl/file-1.pxl"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("db/tbl/file-1.pxl"); !errors.Is(err, objstore.ErrNotFound) {
		t.Errorf("deleted key still served: %v", err)
	}

	if err := s.Put("", []byte("x")); err == nil {
		t.Errorf("Put with empty key accepted")
	}

	// Mutating a returned buffer must not corrupt cached blocks.
	got, _ = s.Get("db/tbl/file-0.pxl")
	for i := range got {
		got[i] = 0
	}
	got2, _ := s.Get("db/tbl/file-0.pxl")
	if !bytes.Equal(got2, data) {
		t.Errorf("cache corrupted by caller mutation")
	}
}

// TestFooterCacheReopen models pixfile.Open's access pattern (tail read,
// then footer read): the second open of the same key must cost zero
// store requests.
func TestFooterCacheReopen(t *testing.T) {
	mem := objstore.NewMemory()
	const size = 200 << 10
	if err := mem.Put("k", blob(size)); err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{Store: mem}
	c := New(cs, Config{FooterSpan: 64 << 10})

	open := func() {
		t.Helper()
		tail, err := c.GetRange("k", size-8, 8)
		if err != nil || len(tail) != 8 {
			t.Fatalf("tail read: %v", err)
		}
		footer, err := c.GetRange("k", size-2048, 2040)
		if err != nil || len(footer) != 2040 {
			t.Fatalf("footer read: %v", err)
		}
	}
	open()
	heads, gets := cs.heads.Load(), cs.gets.Load()
	if heads != 1 || gets != 1 {
		t.Fatalf("cold open cost %d heads + %d gets, want 1 + 1 (footer span)", heads, gets)
	}
	open()
	if cs.heads.Load() != heads || cs.gets.Load() != gets {
		t.Fatalf("warm open touched the store: %d heads, %d gets", cs.heads.Load(), cs.gets.Load())
	}
	if _, hit, err := c.GetRangeCached("k", size-8, 8); err != nil || !hit {
		t.Fatalf("warm tail read not reported as hit (err %v)", err)
	}
	if st := c.Stats(); st.FooterHits == 0 {
		t.Fatalf("no footer hits recorded: %+v", st)
	}
}

// TestSingleFlight forces N concurrent reads of the same uncached block
// to overlap and checks exactly one reaches the store.
func TestSingleFlight(t *testing.T) {
	mem := objstore.NewMemory()
	if err := mem.Put("k", blob(1<<20)); err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{Store: mem}
	c := New(cs, Config{ReadAhead: -1, FooterSpan: 16})
	// Warm the metadata so the gated phase is block fetches only.
	if _, err := c.Head("k"); err != nil {
		t.Fatal(err)
	}

	cs.gate = make(chan struct{})
	cs.entered = make(chan struct{}, 64)
	const readers = 16
	var wg sync.WaitGroup
	errs := make([]error, readers)
	datas := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			datas[i], errs[i] = c.GetRange("k", 100, 5000)
		}(i)
	}
	<-cs.entered // one fetch is inside the store, blocked on the gate
	// Give the remaining readers time to join the in-flight call.
	time.Sleep(20 * time.Millisecond)
	close(cs.gate)
	wg.Wait()

	want := blob(1 << 20)[100:5100]
	for i := range errs {
		if errs[i] != nil || !bytes.Equal(datas[i], want) {
			t.Fatalf("reader %d: err %v, data ok %v", i, errs[i], bytes.Equal(datas[i], want))
		}
	}
	if got := cs.gets.Load(); got != 1 {
		t.Fatalf("%d store fetches for one block under %d concurrent readers, want 1", got, readers)
	}
	if st := c.Stats(); st.SingleFlightShared == 0 {
		t.Fatalf("no single-flight sharing recorded: %+v", st)
	}
}

// TestInvalidateDuringFetch overwrites a key while a read of it is in
// flight: the racing read may serve either version, but nothing from the
// poisoned fetch may be cached — the next read must refetch and see the
// new bytes.
func TestInvalidateDuringFetch(t *testing.T) {
	mem := objstore.NewMemory()
	old := bytes.Repeat([]byte{0xAA}, 8<<10)
	fresh := bytes.Repeat([]byte{0xBB}, 8<<10)
	if err := mem.Put("k", old); err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{Store: mem}
	c := New(cs, Config{ReadAhead: -1, FooterSpan: 16})
	if _, err := c.Head("k"); err != nil { // warm meta: gated phase is the block fetch
		t.Fatal(err)
	}

	cs.gate = make(chan struct{})
	cs.entered = make(chan struct{}, 4)
	done := make(chan error, 1)
	go func() {
		_, err := c.GetRange("k", 0, 1024)
		done <- err
	}()
	<-cs.entered                              // block fetch is in flight, parked on the gate
	if err := c.Put("k", fresh); err != nil { // Put is not gated; poisons the flight
		t.Fatal(err)
	}
	close(cs.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The poisoned fetch must not have populated the cache: this read
	// refetches and sees the new bytes.
	gets := cs.gets.Load()
	got, err := c.GetRange("k", 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh[:1024]) {
		t.Fatalf("stale bytes served after overwrite")
	}
	if cs.gets.Load() == gets {
		t.Fatalf("post-overwrite read served from cache — poisoned fetch was stored")
	}
}

// TestLRUEviction bounds the block cache and checks cold entries fall out.
func TestLRUEviction(t *testing.T) {
	mem := objstore.NewMemory()
	if err := mem.Put("k", blob(8<<10)); err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{Store: mem}
	// ScanResistMin off: this test pins the plain LRU mechanics (the file
	// is far larger than the cache, so the default policy would classify
	// the sequential reads as a streaming scan and bypass admission —
	// TestScanResistantAdmission covers that behavior).
	c := New(cs, Config{
		Capacity: 2048, BlockSize: 1024, Shards: 1, ReadAhead: -1, FooterSpan: 16,
		ScanResistMin: -1,
	})
	read := func(off int64) {
		t.Helper()
		if _, err := c.GetRange("k", off, 1024); err != nil {
			t.Fatal(err)
		}
	}
	read(0)
	read(1024)
	read(2048) // capacity 2 blocks → evicts block 0
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions at capacity: %+v", st)
	}
	gets := cs.gets.Load()
	read(0) // must refetch
	if cs.gets.Load() != gets+1 {
		t.Fatalf("evicted block served from cache")
	}
	// Still-resident block stays a hit.
	gets = cs.gets.Load()
	if _, hit, err := c.GetRangeCached("k", 0, 1024); err != nil || !hit {
		t.Fatalf("just-refetched block not a hit (err %v)", err)
	}
	if cs.gets.Load() != gets {
		t.Fatalf("hit touched the store")
	}
}

// TestReadAhead drives a sequential scan and checks later blocks are
// prefetched ahead of demand, then counted used — and counted wasted when
// flushed before use.
func TestReadAhead(t *testing.T) {
	mem := objstore.NewMemory()
	if err := mem.Put("k", blob(64<<10)); err != nil {
		t.Fatal(err)
	}
	cs := &countingStore{Store: mem}
	c := New(cs, Config{
		BlockSize: 1024, Capacity: 1 << 20, Shards: 1, ReadAhead: 2, FooterSpan: 16,
	})
	if _, err := c.GetRange("k", 0, 1024); err != nil { // streak 1
		t.Fatal(err)
	}
	if _, err := c.GetRange("k", 1024, 1024); err != nil { // streak 2 → prefetch 2,3
		t.Fatal(err)
	}
	c.WaitReadAhead()
	st := c.Stats()
	if st.PrefetchIssued < 2 {
		t.Fatalf("expected ≥2 prefetched blocks, got %+v", st)
	}
	gets := cs.gets.Load()
	data, hit, err := c.GetRangeCached("k", 2048, 1024)
	if err != nil || !hit || cs.gets.Load() != gets {
		t.Fatalf("prefetched block not served from cache (hit=%v, err=%v)", hit, err)
	}
	if !bytes.Equal(data, blob(64 << 10)[2048:3072]) {
		t.Fatalf("prefetched block content wrong")
	}
	c.WaitReadAhead()
	if st := c.Stats(); st.PrefetchUsed == 0 {
		t.Fatalf("used prefetch not counted: %+v", st)
	}
	// Whatever was prefetched and never read is wasted once flushed.
	used := c.Stats().PrefetchUsed
	c.Flush()
	st = c.Stats()
	if st.PrefetchWasted != st.PrefetchIssued-used {
		t.Fatalf("wasted %d, want issued %d - used %d", st.PrefetchWasted, st.PrefetchIssued, used)
	}
	// Flush really dropped everything.
	gets = cs.gets.Load()
	if _, hit, err := c.GetRangeCached("k", 0, 1024); err != nil || hit || cs.gets.Load() == gets {
		t.Fatalf("flushed cache still serving hits")
	}
}

// TestNonSequentialNoPrefetch checks random access never triggers
// read-ahead.
func TestNonSequentialNoPrefetch(t *testing.T) {
	mem := objstore.NewMemory()
	if err := mem.Put("k", blob(64<<10)); err != nil {
		t.Fatal(err)
	}
	c := New(mem, Config{BlockSize: 1024, Shards: 1, ReadAhead: 2, FooterSpan: 16})
	for _, off := range []int64{32 << 10, 0, 16 << 10, 8 << 10, 48 << 10} {
		if _, err := c.GetRange("k", off, 512); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitReadAhead()
	if st := c.Stats(); st.PrefetchIssued != 0 {
		t.Fatalf("random access prefetched %d blocks", st.PrefetchIssued)
	}
}

// TestConcurrentScans hammers the cache from parallel readers and writers
// (race-detector coverage) while verifying every byte served.
func TestConcurrentScans(t *testing.T) {
	mem := objstore.NewMemory()
	const n = 64 << 10
	keys := []string{"t/a.pxl", "t/b.pxl", "t/c.pxl", "t/d.pxl"}
	for _, k := range keys {
		if err := mem.Put(k, blob(n)); err != nil {
			t.Fatal(err)
		}
	}
	want := blob(n)
	// Small capacity forces eviction churn under load.
	c := New(mem, Config{Capacity: 64 << 10, BlockSize: 4096, Shards: 2, ReadAhead: 2, FooterSpan: 64})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			key := keys[g%len(keys)]
			if g%2 == 0 {
				// Sequential scan in chunk-sized steps.
				for off := int64(0); off+4096 <= n; off += 4096 {
					got, err := c.GetRange(key, off, 4096)
					if err != nil || !bytes.Equal(got, want[off:off+4096]) {
						t.Errorf("seq read %s@%d: %v", key, off, err)
						return
					}
				}
			} else {
				for i := 0; i < 100; i++ {
					off := rng.Int63n(n - 512)
					got, err := c.GetRange(key, off, 512)
					if err != nil || !bytes.Equal(got, want[off:off+512]) {
						t.Errorf("rand read %s@%d: %v", key, off, err)
						return
					}
				}
			}
		}(g)
	}
	// Concurrent writers on disjoint keys exercise invalidation paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("w/%d", i%5)
			if err := c.Put(k, blob(100+i)); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			if _, err := c.Get(k); err != nil {
				t.Errorf("get after put: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	c.WaitReadAhead()
}

// TestCountersAttachToMetered wires the cache's counters into a Metered
// store below it, the production layering of pixelsdb.Open.
func TestCountersAttachToMetered(t *testing.T) {
	met := objstore.NewMetered(objstore.NewMemory())
	c := New(met, Config{ReadAhead: -1, FooterSpan: 16})
	met.AttachCache(c)
	if err := c.Put("k", blob(8<<10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetRange("k", 0, 4096); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c.GetRange("k", 0, 4096); err != nil { // hit
		t.Fatal(err)
	}
	u := met.Usage()
	if u.CacheHits != 1 || u.CacheMisses != 1 {
		t.Fatalf("metered usage cache counters = %d/%d, want 1/1", u.CacheHits, u.CacheMisses)
	}
	met.Reset()
	if u := met.Usage(); u.CacheHits != 0 || u.CacheMisses != 0 {
		t.Fatalf("Reset did not re-baseline cache counters: %+v", u)
	}
	if _, err := c.GetRange("k", 0, 4096); err != nil { // hit after reset
		t.Fatal(err)
	}
	if u := met.Usage(); u.CacheHits != 1 {
		t.Fatalf("post-reset delta = %+v, want 1 hit", u)
	}
}

// TestParsedFooterCacheContract covers the decoded-footer cache: store and
// hit, size-mismatch miss, Put/Delete invalidation, and the requirement
// that a never-seen key neither stores nor panics.
func TestParsedFooterCacheContract(t *testing.T) {
	inner := objstore.NewMemory()
	c := New(inner, Config{})
	type footer struct{ id int }

	// Storing for a key the cache has never resolved is a no-op.
	c.StoreParsedFooter("ghost", 10, &footer{id: 0})
	if _, ok := c.ParsedFooter("ghost", 10); ok {
		t.Fatal("parsed footer stored for an unresolved key")
	}

	data := bytes.Repeat([]byte{7}, 1024)
	if err := c.Put("k", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetRange("k", 0, 16); err != nil { // resolves fileMeta
		t.Fatal(err)
	}
	f1 := &footer{id: 1}
	c.StoreParsedFooter("k", 1024, f1)
	got, ok := c.ParsedFooter("k", 1024)
	if !ok || got.(*footer) != f1 {
		t.Fatalf("parsed footer roundtrip failed: %v %v", got, ok)
	}
	if c.Stats().ParsedFooterHits != 1 {
		t.Fatalf("ParsedFooterHits = %d, want 1", c.Stats().ParsedFooterHits)
	}

	// A size mismatch must miss (entry was parsed from other bytes).
	if _, ok := c.ParsedFooter("k", 999); ok {
		t.Fatal("parsed footer served despite size mismatch")
	}

	// Storing under a stale size is refused.
	c.StoreParsedFooter("k", 999, &footer{id: 2})
	if got, ok := c.ParsedFooter("k", 1024); !ok || got.(*footer) != f1 {
		t.Fatal("stale-size store clobbered the valid entry")
	}

	// A rewrite through the store drops the entry.
	if err := c.Put("k", data); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.ParsedFooter("k", 1024); ok {
		t.Fatal("Put did not invalidate the parsed footer")
	}

	// Re-resolve, store, then Delete must invalidate too.
	if _, err := c.GetRange("k", 0, 16); err != nil {
		t.Fatal(err)
	}
	c.StoreParsedFooter("k", 1024, &footer{id: 3})
	if err := c.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.ParsedFooter("k", 1024); ok {
		t.Fatal("Delete did not invalidate the parsed footer")
	}
}

// streamFile reads a file start-to-end in blockSize steps through the
// block path (stopping short of the pinned footer span), the access
// pattern of a one-pass scan.
func streamFile(t *testing.T, c *CachingStore, key string, size, step, footerSpan int64) {
	t.Helper()
	for off := int64(0); off+step <= size-footerSpan; off += step {
		if _, err := c.GetRange(key, off, step); err != nil {
			t.Fatalf("stream %s@%d: %v", key, off, err)
		}
	}
}

// TestScanResistantAdmission: a sequential one-pass scan of a file larger
// than ScanResistMin must not evict a hot small table's blocks — streaming
// blocks are admitted at the LRU's cold end and bypassed once the cache is
// full — while disabling scan resistance restores the old flush-everything
// behavior.
func TestScanResistantAdmission(t *testing.T) {
	const (
		blockSz  = 1024
		capacity = 8 * blockSz
		footerSp = 16
		hotSize  = 2 * blockSz
		bigSize  = 64 * blockSz
	)
	setup := func(resist int64) (*CachingStore, func()) {
		mem := objstore.NewMemory()
		if err := mem.Put("hot", blob(hotSize)); err != nil {
			t.Fatal(err)
		}
		if err := mem.Put("big", blob(bigSize)); err != nil {
			t.Fatal(err)
		}
		c := New(mem, Config{
			Capacity: capacity, BlockSize: blockSz, Shards: 1,
			ReadAhead: -1, FooterSpan: footerSp, ScanResistMin: resist,
		})
		readHot := func() {
			for off := int64(0); off < hotSize-footerSp; off += blockSz {
				if _, err := c.GetRange("hot", off, blockSz/2); err != nil {
					t.Fatal(err)
				}
			}
		}
		return c, readHot
	}

	// Scan resistance on (default threshold: capacity/2 = 4 blocks, well
	// under the big file).
	c, readHot := setup(0)
	readHot() // populate the hot blocks
	before := c.Stats()
	readHot() // all hits now
	if d := c.Stats(); d.Hits-before.Hits != 2 || d.Misses != before.Misses {
		t.Fatalf("hot file not resident before scan: %+v", d)
	}
	streamFile(t, c, "big", bigSize, blockSz, footerSp)
	st := c.Stats()
	if st.ColdAdmits == 0 {
		t.Errorf("streaming scan produced no cold admissions: %+v", st)
	}
	if st.ScanBypasses == 0 {
		t.Errorf("full cache produced no scan bypasses: %+v", st)
	}
	mid := c.Stats()
	readHot() // the point: still resident after the big scan
	if d := c.Stats(); d.Misses != mid.Misses {
		t.Fatalf("one-pass scan evicted the hot file: %+v vs %+v", d, mid)
	}

	// Scan resistance off: the same scan flushes the hot blocks.
	c, readHot = setup(-1)
	readHot()
	streamFile(t, c, "big", bigSize, blockSz, footerSp)
	if st := c.Stats(); st.ColdAdmits != 0 || st.ScanBypasses != 0 {
		t.Fatalf("cold admissions with scan resistance disabled: %+v", st)
	}
	mid = c.Stats()
	readHot()
	if d := c.Stats(); d.Misses == mid.Misses {
		t.Fatal("expected the unprotected scan to evict the hot file")
	}
}

// TestReadAheadWasteClamp: once enough prefetched blocks die unread, the
// effective read-ahead window drops to one block.
func TestReadAheadWasteClamp(t *testing.T) {
	mem := objstore.NewMemory()
	if err := mem.Put("k", blob(1<<20)); err != nil {
		t.Fatal(err)
	}
	c := New(mem, Config{BlockSize: 1024, Capacity: 1 << 20, Shards: 1, ReadAhead: 4, FooterSpan: 16})
	if got := c.effectiveReadAhead(); got != 4 {
		t.Fatalf("effectiveReadAhead = %d before any waste, want 4", got)
	}
	c.winIssued.Store(100)
	c.winWasted.Store(10) // 10% wasted: keep the window
	if got := c.effectiveReadAhead(); got != 4 {
		t.Fatalf("effectiveReadAhead = %d at 10%% waste, want 4", got)
	}
	c.winWasted.Store(50) // 50% wasted: clamp
	if got := c.effectiveReadAhead(); got != 1 {
		t.Fatalf("effectiveReadAhead = %d at 50%% waste, want 1", got)
	}
	c.winIssued.Store(10) // too few samples to judge
	c.winWasted.Store(9)
	if got := c.effectiveReadAhead(); got != 4 {
		t.Fatalf("effectiveReadAhead = %d under the sample floor, want 4", got)
	}
	// The window decays: a large sample halves, letting a recovered
	// workload unclamp instead of dragging lifetime history.
	c.winIssued.Store(2000)
	c.winWasted.Store(600) // 30% over the window: clamped...
	if got := c.effectiveReadAhead(); got != 1 {
		t.Fatalf("effectiveReadAhead = %d at 30%% windowed waste, want 1", got)
	}
	if iw := c.winIssued.Load(); iw != 1000 {
		t.Fatalf("window did not decay: issued %d, want 1000", iw)
	}
	if ww := c.winWasted.Load(); ww != 300 {
		t.Fatalf("window did not decay: wasted %d, want 300", ww)
	}
}

// TestStreamingScanSuppressesReadAhead: once a file is classified as a
// streaming scan and the cache is full (cold admission would bypass its
// blocks), read-ahead stops issuing prefetches — otherwise every block of
// the scan would be fetched, dropped by admission, and fetched again by
// the demand read.
func TestStreamingScanSuppressesReadAhead(t *testing.T) {
	const (
		blockSz  = 1024
		capacity = 8 * blockSz
		footerSp = 16
	)
	mem := objstore.NewMemory()
	if err := mem.Put("hot", blob(8*blockSz)); err != nil {
		t.Fatal(err)
	}
	if err := mem.Put("big", blob(64*blockSz)); err != nil {
		t.Fatal(err)
	}
	c := New(mem, Config{
		Capacity: capacity, BlockSize: blockSz, Shards: 1,
		ReadAhead: 2, FooterSpan: footerSp, ScanResistMin: 16 * blockSz,
	})
	// Fill the cache with the (non-streaming) hot file.
	for off := int64(0); off+blockSz <= 8*blockSz-footerSp; off += blockSz {
		if _, err := c.GetRange("hot", off, blockSz/2); err != nil {
			t.Fatal(err)
		}
	}
	c.WaitReadAhead()
	issuedBefore := c.Stats().PrefetchIssued

	streamFile(t, c, "big", 64*blockSz, blockSz, footerSp)
	c.WaitReadAhead()
	st := c.Stats()
	if st.ScanBypasses == 0 {
		t.Fatalf("streaming scan of a full cache produced no bypasses: %+v", st)
	}
	// Only the pre-classification reads (streak < 2, cold=false) may have
	// prefetched; once cold + full, issuance must stop. Without the
	// suppression every one of the ~60 blocks would be prefetched.
	if issued := st.PrefetchIssued - issuedBefore; issued > 6 {
		t.Fatalf("streaming scan issued %d prefetches into a full cache", issued)
	}
}
