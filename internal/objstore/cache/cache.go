// Package cache puts a read-through caching layer in front of any
// objstore.Store. It exists because the $/TB-scan economics of the paper
// hinge on how fast a VM slot can stream row groups out of the object
// store: workers issue one ranged GET per column chunk and re-read file
// footers on every open, so repeated and concurrent scans pay the full
// request count every time.
//
// The CachingStore provides three mechanisms:
//
//   - A bounded, sharded block LRU: ranged reads are served from
//     fixed-size blocks keyed by (key, block offset, block length), so hot
//     byte ranges of base tables stay resident across queries.
//   - A footer/metadata cache: the trailing FooterSpan bytes of each file
//     plus its Head info are pinned per key, so pixfile.Open on an
//     already-seen file costs zero store requests.
//   - Sequential read-ahead: monotonically advancing reads of the same key
//     (the access pattern of row-group-ordered scans) trigger asynchronous
//     prefetch of the next ReadAhead blocks, overlapping object-store I/O
//     with compute.
//
// Concurrent readers of the same uncached block are collapsed into a
// single inner request (single-flight), which matters when parallel
// workers of one query — or coalesced queries — walk the same files.
//
// The cache is a physical-I/O optimization only: billed bytes-scanned are
// accounted reader-side (pixfile.File.BytesRead) and are identical with
// the cache on or off. Writers must go through the CachingStore (Put and
// Delete invalidate); out-of-band writes to the inner store leave the
// cache stale.
package cache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/objstore"
)

// Config parameterizes a CachingStore. The zero value gives sane defaults;
// only Capacity is commonly tuned.
type Config struct {
	// Capacity bounds the total bytes of cached blocks across all shards
	// (default 64 MiB). Footer bytes are budgeted separately and bounded by
	// MaxFiles × FooterSpan.
	Capacity int64
	// BlockSize is the fetch/cache granularity for ranged reads (default
	// 256 KiB). Larger blocks amortize request costs, smaller blocks waste
	// less on selective reads.
	BlockSize int64
	// ReadAhead is how many blocks past the current read are prefetched
	// once sequential access is detected (default 2; negative disables).
	ReadAhead int
	// FooterSpan is how many trailing bytes of each file are pinned in the
	// footer cache (default 64 KiB — comfortably above pixfile footers).
	FooterSpan int64
	// MaxFiles bounds the per-file metadata/footer entries (default 512).
	MaxFiles int
	// Shards is the block-LRU shard count (default 8).
	Shards int
	// MaxSeqGap is the largest forward gap between consecutive reads still
	// treated as sequential — column projections skip unread chunks, so
	// row-group-ordered access is monotonic, not contiguous (default
	// 4×BlockSize).
	MaxSeqGap int64
	// ScanResistMin makes the block LRU scan-resistant: once a file at
	// least this large is being read sequentially (a one-pass scan of data
	// that cannot all fit), its blocks are admitted at the cold end of the
	// LRU — and skipped entirely under capacity pressure — so a large scan
	// cannot flush the hot small-table blocks that the front of the LRU
	// protects. 0 picks the default of half the per-shard capacity
	// (Capacity/Shards/2 — one key's blocks all land in one shard, so a
	// shard is the flush domain a scan threatens); negative disables scan
	// resistance (every block is admitted hot, the pre-existing behavior).
	ScanResistMin int64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 64 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 256 << 10
	}
	if c.ReadAhead == 0 {
		c.ReadAhead = 2
	} else if c.ReadAhead < 0 {
		c.ReadAhead = 0
	}
	if c.FooterSpan <= 0 {
		c.FooterSpan = 64 << 10
	}
	if c.MaxFiles <= 0 {
		c.MaxFiles = 512
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxSeqGap <= 0 {
		c.MaxSeqGap = 4 * c.BlockSize
	}
	switch {
	case c.ScanResistMin == 0:
		// All blocks of one key hash to a single shard, so the flush
		// domain a scan threatens is a shard, not the whole cache: scale
		// the default threshold to per-shard capacity.
		c.ScanResistMin = c.Capacity / int64(c.Shards) / 2
	case c.ScanResistMin < 0:
		c.ScanResistMin = 0 // disabled
	}
	return c
}

// Stats is a snapshot of cache activity. Counters are monotonic.
type Stats struct {
	// Hits / Misses count GetRange calls served entirely from cache vs
	// calls that needed at least one inner request.
	Hits, Misses int64
	// FooterHits counts reads served from the pinned footer cache.
	FooterHits int64
	// ParsedFooterHits counts reopens served from the decoded-footer cache
	// (no fetch, no CRC/tail validation, no parse).
	ParsedFooterHits int64
	// BytesFromCache / BytesFetched split served bytes by origin.
	BytesFromCache, BytesFetched int64
	// PrefetchIssued / PrefetchUsed / PrefetchWasted account read-ahead:
	// blocks fetched ahead of demand, those later consumed, and those
	// evicted (or flushed) without ever being read.
	PrefetchIssued, PrefetchUsed, PrefetchWasted int64
	// SingleFlightShared counts reads that piggybacked on an in-flight
	// identical fetch instead of issuing their own.
	SingleFlightShared int64
	// Evictions counts blocks dropped under capacity pressure.
	Evictions int64
	// ColdAdmits / ScanBypasses account the scan-resistant admission
	// policy: blocks of a streaming large file inserted at the LRU's cold
	// end, and blocks not cached at all because inserting them would have
	// evicted hot data.
	ColdAdmits, ScanBypasses int64
}

// CachingStore wraps an objstore.Store with the block LRU, footer cache
// and read-ahead described in the package comment. It is safe for
// concurrent use.
type CachingStore struct {
	inner objstore.Store
	cfg   Config

	shards []*shard

	mu       sync.Mutex // guards files map, file LRU and per-file seq state
	files    map[string]*fileMeta
	fileList *list.List // front = most recently used

	flightMu sync.Mutex
	flight   map[string]*call

	prefetchSem chan struct{}
	prefetchWG  sync.WaitGroup

	hits, misses, footerHits         atomic.Int64
	parsedFooterHits                 atomic.Int64
	bytesFromCache, bytesFetched     atomic.Int64
	prefIssued, prefUsed, prefWasted atomic.Int64
	sfShared, evictions              atomic.Int64
	coldAdmits, scanBypasses         atomic.Int64

	// winIssued/winWasted are the decaying-window counterparts of
	// prefIssued/prefWasted: effectiveReadAhead clamps on these so one bad
	// early phase cannot depress read-ahead for the process's lifetime
	// (the monotonic Stats counters stay untouched).
	winIssued, winWasted atomic.Int64
}

// fileMeta is the pinned per-file entry: size, mod time, the trailing
// footer bytes, the decoded-footer object, and the sequential-access
// detector state.
type fileMeta struct {
	key       string
	size      int64
	modTime   time.Time
	footerOff int64  // size - FooterSpan, clamped to 0
	footer    []byte // nil until first footer-region read; guarded by s.mu

	// parsed is the reader's decoded footer for (key, parsedSize), stored
	// via StoreParsedFooter; guarded by s.mu. It rides the same entry — and
	// therefore the same MaxFiles LRU bound and Put/Delete invalidation —
	// as the pinned footer bytes.
	parsed     any
	parsedSize int64

	lastEnd int64 // end offset of the previous block-path read; s.mu
	streak  int   // consecutive sequential reads; s.mu

	// noStore marks a detached entry whose Head raced an invalidation:
	// its size may predate the write, so nothing read through it (blocks,
	// footer) may be inserted into the cache.
	noStore bool

	elem *list.Element
}

// call is one in-flight inner fetch shared by concurrent readers.
type call struct {
	wg       sync.WaitGroup
	data     []byte
	info     objstore.ObjectInfo
	err      error
	demanded atomic.Bool // a demand (non-prefetch) reader needs the result
	// noStore is set when the key is invalidated while this fetch is in
	// flight: the result may predate the write, so it is returned to the
	// waiting readers but must not be inserted into the cache.
	noStore atomic.Bool
}

// block is one cached fixed-size range of a file.
type block struct {
	key        string
	idx        int64
	data       []byte
	prefetched bool
	used       bool
}

type shard struct {
	mu       sync.Mutex
	capacity int64
	cur      int64
	ll       *list.List // front = most recently used
	blocks   map[string]map[int64]*list.Element
}

// New layers a cache over inner. All reads and writes of the cached keys
// must go through the returned store.
func New(inner objstore.Store, cfg Config) *CachingStore {
	cfg = cfg.withDefaults()
	s := &CachingStore{
		inner:    inner,
		cfg:      cfg,
		files:    make(map[string]*fileMeta),
		fileList: list.New(),
		flight:   make(map[string]*call),
	}
	if n := cfg.ReadAhead; n > 0 {
		s.prefetchSem = make(chan struct{}, n)
	}
	perShard := cfg.Capacity / int64(cfg.Shards)
	if perShard < cfg.BlockSize {
		perShard = cfg.BlockSize
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			capacity: perShard,
			ll:       list.New(),
			blocks:   make(map[string]map[int64]*list.Element),
		})
	}
	return s
}

// Inner returns the wrapped store.
func (s *CachingStore) Inner() objstore.Store { return s.inner }

// Stats returns a snapshot of the cache counters.
func (s *CachingStore) Stats() Stats {
	return Stats{
		Hits:               s.hits.Load(),
		Misses:             s.misses.Load(),
		FooterHits:         s.footerHits.Load(),
		ParsedFooterHits:   s.parsedFooterHits.Load(),
		BytesFromCache:     s.bytesFromCache.Load(),
		BytesFetched:       s.bytesFetched.Load(),
		PrefetchIssued:     s.prefIssued.Load(),
		PrefetchUsed:       s.prefUsed.Load(),
		PrefetchWasted:     s.prefWasted.Load(),
		SingleFlightShared: s.sfShared.Load(),
		Evictions:          s.evictions.Load(),
		ColdAdmits:         s.coldAdmits.Load(),
		ScanBypasses:       s.scanBypasses.Load(),
	}
}

// CacheCounters implements objstore.CacheCounterSource so a Metered store
// beneath the cache can surface hit/miss/wasted counts in its Usage.
func (s *CachingStore) CacheCounters() (hits, misses, prefetchWasted int64) {
	return s.hits.Load(), s.misses.Load(), s.prefWasted.Load()
}

func (s *CachingStore) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// do deduplicates concurrent fetches of the same flight key. It returns
// the shared call and whether this goroutine executed fn (the "winner").
func (s *CachingStore) do(key string, demand bool, fn func() ([]byte, objstore.ObjectInfo, error)) (*call, bool) {
	s.flightMu.Lock()
	if c, ok := s.flight[key]; ok {
		s.flightMu.Unlock()
		if demand {
			c.demanded.Store(true)
		}
		s.sfShared.Add(1)
		c.wg.Wait()
		return c, false
	}
	c := &call{}
	c.demanded.Store(demand)
	c.wg.Add(1)
	s.flight[key] = c
	s.flightMu.Unlock()

	c.data, c.info, c.err = fn()

	s.flightMu.Lock()
	delete(s.flight, key)
	s.flightMu.Unlock()
	c.wg.Done()
	return c, true
}

// meta returns the pinned per-file entry, loading it with one Head on
// first access. cached reports whether no inner request was needed.
func (s *CachingStore) meta(key string) (fm *fileMeta, cached bool, err error) {
	s.mu.Lock()
	if fm, ok := s.files[key]; ok {
		s.fileList.MoveToFront(fm.elem)
		s.mu.Unlock()
		return fm, true, nil
	}
	s.mu.Unlock()

	c, _ := s.do("h\x00"+key, true, func() ([]byte, objstore.ObjectInfo, error) {
		info, err := s.inner.Head(key)
		return nil, info, err
	})
	if c.err != nil {
		return nil, false, c.err
	}

	if c.noStore.Load() { // key written mid-flight: serve but don't cache
		fm = &fileMeta{key: key, size: c.info.Size, modTime: c.info.ModTime, noStore: true}
		fm.footerOff = fm.size - s.cfg.FooterSpan
		if fm.footerOff < 0 {
			fm.footerOff = 0
		}
		return fm, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fm, ok := s.files[key]; ok { // installed by a concurrent reader
		return fm, false, nil
	}
	fm = &fileMeta{key: key, size: c.info.Size, modTime: c.info.ModTime}
	fm.footerOff = fm.size - s.cfg.FooterSpan
	if fm.footerOff < 0 {
		fm.footerOff = 0
	}
	fm.elem = s.fileList.PushFront(fm)
	s.files[key] = fm
	for len(s.files) > s.cfg.MaxFiles {
		tail := s.fileList.Back()
		old := tail.Value.(*fileMeta)
		s.fileList.Remove(tail)
		delete(s.files, old.key)
	}
	return fm, false, nil
}

// footer returns the pinned trailing bytes of the file, loading them once.
func (s *CachingStore) footer(fm *fileMeta) (data []byte, cached bool, err error) {
	s.mu.Lock()
	f := fm.footer
	s.mu.Unlock()
	if f != nil {
		return f, true, nil
	}
	c, winner := s.do("f\x00"+fm.key, true, func() ([]byte, objstore.ObjectInfo, error) {
		data, err := s.inner.GetRange(fm.key, fm.footerOff, fm.size-fm.footerOff)
		return data, objstore.ObjectInfo{}, err
	})
	if c.err != nil {
		return nil, false, c.err
	}
	if winner {
		s.bytesFetched.Add(int64(len(c.data)))
	}
	if fm.noStore || c.noStore.Load() {
		return c.data, false, nil
	}
	s.mu.Lock()
	if fm.footer == nil {
		fm.footer = c.data
	}
	f = fm.footer
	s.mu.Unlock()
	return f, false, nil
}

// ParsedFooter implements objstore.ParsedFooterCache: it returns the
// decoded footer previously stored for key, provided the key is still
// resident and its size matches (a rewrite through this store invalidates
// the entry, so a size check suffices to reject entries stored before an
// observed write).
func (s *CachingStore) ParsedFooter(key string, size int64) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fm, ok := s.files[key]
	if !ok || fm.parsed == nil || fm.parsedSize != size {
		return nil, false
	}
	s.fileList.MoveToFront(fm.elem)
	s.parsedFooterHits.Add(1)
	return fm.parsed, true
}

// StoreParsedFooter implements objstore.ParsedFooterCache. The value must
// be immutable; it is dropped with the file entry on Put/Delete or under
// MaxFiles pressure.
func (s *CachingStore) StoreParsedFooter(key string, size int64, footer any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fm, ok := s.files[key]
	if !ok || fm.noStore || fm.size != size {
		return
	}
	fm.parsed, fm.parsedSize = footer, size
}

// isStreaming classifies a file as mid-one-pass-scan: large relative to
// the cache (ScanResistMin) and currently being read sequentially (streak
// from the sequential detector, read by the caller under s.mu). Its blocks
// then take the cold admission path.
func (s *CachingStore) isStreaming(fm *fileMeta, streak int) bool {
	return s.cfg.ScanResistMin > 0 && fm.size >= s.cfg.ScanResistMin && streak >= 2
}

// blockData returns one block of the file, from cache or via a
// single-flight inner fetch. demand distinguishes reader-driven fetches
// from read-ahead for the prefetch accounting; cold routes the block
// through the scan-resistant admission path.
func (s *CachingStore) blockData(fm *fileMeta, idx int64, demand, cold bool) (data []byte, cached bool, err error) {
	sh := s.shardFor(fm.key)
	if data, ok := sh.get(fm.key, idx, s); ok {
		return data, true, nil
	}
	blockOff := idx * s.cfg.BlockSize
	blockLen := s.cfg.BlockSize
	if blockOff+blockLen > fm.size {
		blockLen = fm.size - blockOff
	}
	c, winner := s.do(fmt.Sprintf("b\x00%s\x00%d", fm.key, idx), demand, func() ([]byte, objstore.ObjectInfo, error) {
		data, err := s.inner.GetRange(fm.key, blockOff, blockLen)
		return data, objstore.ObjectInfo{}, err
	})
	if c.err != nil {
		return nil, false, c.err
	}
	if winner {
		s.bytesFetched.Add(int64(len(c.data)))
		if !demand {
			s.prefIssued.Add(1)
			s.winIssued.Add(1)
		}
		// A prefetched block whose fetch a demand reader joined mid-flight
		// was already useful.
		used := c.demanded.Load()
		if !demand && used {
			s.prefUsed.Add(1)
		}
		if !fm.noStore && !c.noStore.Load() {
			sh.add(fm.key, idx, c.data, !demand, used, cold, s)
		}
	}
	return c.data, false, nil
}

// GetRangeCached implements objstore.CachedRanger: like GetRange, but also
// reports whether the read was served without any inner request, so the
// engine can attribute per-query cache hits.
func (s *CachingStore) GetRangeCached(key string, off, length int64) ([]byte, bool, error) {
	if off < 0 {
		return nil, false, fmt.Errorf("objstore: range offset %d out of bounds for %s", off, key)
	}
	fm, hit, err := s.meta(key)
	if err != nil {
		return nil, false, err
	}
	size := fm.size
	if off > size {
		return nil, false, fmt.Errorf("objstore: range offset %d out of bounds for %s (size %d)", off, key, size)
	}
	end := size
	if length >= 0 {
		end = off + length
		if end > size {
			return nil, false, fmt.Errorf("objstore: range [%d,%d) out of bounds for %s (size %d)", off, end, key, size)
		}
	}
	out := make([]byte, end-off)
	if end == off {
		return out, hit, nil
	}

	if off >= fm.footerOff {
		// Entirely within the pinned footer span.
		f, cached, err := s.footer(fm)
		if err != nil {
			return nil, false, err
		}
		copy(out, f[off-fm.footerOff:end-fm.footerOff])
		hit = hit && cached
		if cached {
			s.footerHits.Add(1)
		}
		s.recordCall(hit, int64(len(out)))
		return out, hit, nil
	}

	B := s.cfg.BlockSize
	first, last := off/B, (end-1)/B
	cold := false
	if s.cfg.ScanResistMin > 0 && fm.size >= s.cfg.ScanResistMin {
		// One lock, only for files large enough to qualify: the cold
		// classification uses the streak as of the previous reads.
		s.mu.Lock()
		streak := fm.streak
		s.mu.Unlock()
		cold = s.isStreaming(fm, streak)
	}
	for idx := first; idx <= last; idx++ {
		data, cached, err := s.blockData(fm, idx, true, cold)
		if err != nil {
			return nil, false, err
		}
		blockOff := idx * B
		lo, hi := max(off, blockOff), min(end, blockOff+int64(len(data)))
		copy(out[lo-off:hi-off], data[lo-blockOff:hi-blockOff])
		hit = hit && cached
	}
	s.recordCall(hit, int64(len(out)))
	s.maybeReadAhead(fm, off, end, last)
	return out, hit, nil
}

func (s *CachingStore) recordCall(hit bool, n int64) {
	if hit {
		s.hits.Add(1)
		s.bytesFromCache.Add(n)
	} else {
		s.misses.Add(1)
	}
}

// effectiveReadAhead is the configured depth clamped by the measured
// prefetch waste: once a meaningful share of recently prefetched blocks
// dies unread (PrefetchWasted — the tuning signal the cold-admission
// policy feeds when the cache is saturated), the window shrinks to one
// block so read-ahead stops amplifying a losing bet. The ratio is taken
// over a decaying window — both counters halve once enough samples
// accumulate — so the clamp recovers when the workload does instead of
// dragging process-lifetime history.
func (s *CachingStore) effectiveReadAhead() int {
	ra := s.cfg.ReadAhead
	if ra <= 1 {
		return ra
	}
	issued := s.winIssued.Load()
	if issued > 1024 {
		// Approximate halving; racy by design — this is a heuristic, and
		// a lost update only delays one decay step.
		s.winIssued.Store(issued / 2)
		s.winWasted.Store(s.winWasted.Load() / 2)
		issued /= 2
	}
	if issued >= 64 && s.winWasted.Load()*4 > issued {
		return 1
	}
	return ra
}

// maybeReadAhead advances the per-file sequential detector and, once two
// monotonically forward reads are seen, prefetches the next ReadAhead
// blocks asynchronously. Prefetch never blocks the caller: when the
// prefetcher is saturated the window is simply skipped.
func (s *CachingStore) maybeReadAhead(fm *fileMeta, off, end, last int64) {
	// The sequential detector always advances: it feeds both read-ahead
	// and the scan-resistant admission classifier (isStreaming).
	s.mu.Lock()
	seq := fm.lastEnd > 0 && off >= fm.lastEnd && off-fm.lastEnd <= s.cfg.MaxSeqGap
	if seq {
		fm.streak++
	} else {
		fm.streak = 1
	}
	fm.lastEnd = end
	streak := fm.streak
	s.mu.Unlock()
	if s.cfg.ReadAhead <= 0 || streak < 2 {
		return
	}
	cold := s.isStreaming(fm, streak)
	maxIdx := (fm.size - 1) / s.cfg.BlockSize
	sh := s.shardFor(fm.key)
	if cold && sh.atCapacity(s.cfg.BlockSize) {
		// Cold admission would bypass these blocks anyway: prefetching them
		// would fetch bytes that get dropped and then fetched again by the
		// demand read — read-ahead is pure waste for a streaming scan of a
		// full cache.
		return
	}
	ra := int64(s.effectiveReadAhead())
	for i := int64(1); i <= ra; i++ {
		idx := last + i
		// The footer region is served from the pinned footer cache; blocks
		// starting inside it are never demanded.
		if idx > maxIdx || idx*s.cfg.BlockSize >= fm.footerOff {
			return
		}
		if sh.contains(fm.key, idx) {
			continue
		}
		select {
		case s.prefetchSem <- struct{}{}:
			s.prefetchWG.Add(1)
			go func(idx int64) {
				defer func() { <-s.prefetchSem; s.prefetchWG.Done() }()
				_, _, _ = s.blockData(fm, idx, false, cold)
			}(idx)
		default:
			return
		}
	}
}

// WaitReadAhead blocks until no read-ahead fetches are in flight. It is a
// test and benchmark hook: with no concurrent readers issuing new reads,
// the cache is quiescent when it returns.
func (s *CachingStore) WaitReadAhead() { s.prefetchWG.Wait() }

// Flush drops every cached byte (blocks, footers, file metadata) while
// keeping the monotonic counters. Prefetched blocks never read count as
// wasted. Used by cold-cache benchmarks.
func (s *CachingStore) Flush() {
	s.prefetchWG.Wait()
	for _, sh := range s.shards {
		sh.flush(s)
	}
	s.mu.Lock()
	s.files = make(map[string]*fileMeta)
	s.fileList.Init()
	s.mu.Unlock()
}

func (s *CachingStore) invalidate(key string) {
	// Poison in-flight fetches of this key first: a fetch that started
	// before the write may hold pre-write bytes, and must not land in the
	// cache after the eviction below.
	metaKey, footKey, blockPrefix := "h\x00"+key, "f\x00"+key, "b\x00"+key+"\x00"
	s.flightMu.Lock()
	for fk, c := range s.flight {
		if fk == metaKey || fk == footKey || strings.HasPrefix(fk, blockPrefix) {
			c.noStore.Store(true)
		}
	}
	s.flightMu.Unlock()

	s.shardFor(key).invalidateKey(key)
	s.mu.Lock()
	if fm, ok := s.files[key]; ok {
		s.fileList.Remove(fm.elem)
		delete(s.files, key)
	}
	s.mu.Unlock()
}

// Put implements objstore.Store, invalidating cached state for the key.
func (s *CachingStore) Put(key string, data []byte) error {
	err := s.inner.Put(key, data)
	if err == nil {
		s.invalidate(key)
	}
	return err
}

// Get implements objstore.Store via the block cache, so full-object reads
// warm the same entries ranged reads use.
func (s *CachingStore) Get(key string) ([]byte, error) {
	data, _, err := s.GetRangeCached(key, 0, -1)
	return data, err
}

// GetRange implements objstore.Store.
func (s *CachingStore) GetRange(key string, off, length int64) ([]byte, error) {
	data, _, err := s.GetRangeCached(key, off, length)
	return data, err
}

// Head implements objstore.Store from the metadata cache.
func (s *CachingStore) Head(key string) (objstore.ObjectInfo, error) {
	fm, _, err := s.meta(key)
	if err != nil {
		return objstore.ObjectInfo{}, err
	}
	return objstore.ObjectInfo{Key: key, Size: fm.size, ModTime: fm.modTime}, nil
}

// Delete implements objstore.Store, invalidating cached state for the key.
func (s *CachingStore) Delete(key string) error {
	err := s.inner.Delete(key)
	if err == nil {
		s.invalidate(key)
	}
	return err
}

// List implements objstore.Store (passthrough — listings are not cached).
func (s *CachingStore) List(prefix string) ([]objstore.ObjectInfo, error) {
	return s.inner.List(prefix)
}

// ---- shard (block LRU) ----

// get returns a resident block and marks it used, or (nil, false).
func (sh *shard) get(key string, idx int64, s *CachingStore) ([]byte, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.blocks[key][idx]
	if !ok {
		return nil, false
	}
	sh.ll.MoveToFront(el)
	b := el.Value.(*block)
	if b.prefetched && !b.used {
		b.used = true
		s.prefUsed.Add(1)
	}
	return b.data, true
}

// atCapacity reports whether inserting one more block of the given size
// would exceed the shard's capacity (a point-in-time heuristic read; the
// admission decision itself is re-made under the lock in add).
func (sh *shard) atCapacity(blockSize int64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cur+blockSize > sh.capacity
}

func (sh *shard) contains(key string, idx int64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.blocks[key][idx]
	return ok
}

// add inserts a block, evicting from the cold end until under capacity.
// A cold insert (scan-resistant admission for streaming large files) goes
// to the back of the LRU when there is room — a later re-access still
// promotes it — and is bypassed entirely when caching it would evict
// warmer blocks, so a one-pass scan can never flush the hot set.
func (sh *shard) add(key string, idx int64, data []byte, prefetched, used, cold bool, s *CachingStore) {
	if int64(len(data)) > sh.capacity {
		return // would evict the whole shard for one entry
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.blocks[key][idx]; ok { // concurrent insert won
		sh.ll.MoveToFront(el)
		return
	}
	if cold && sh.cur+int64(len(data)) > sh.capacity {
		s.scanBypasses.Add(1)
		if prefetched && !used {
			// A prefetched block that admission refuses was fetched for
			// nothing: feed the waste signal the read-ahead clamp tunes on.
			s.prefWasted.Add(1)
			s.winWasted.Add(1)
		}
		return
	}
	m := sh.blocks[key]
	if m == nil {
		m = make(map[int64]*list.Element)
		sh.blocks[key] = m
	}
	b := &block{key: key, idx: idx, data: data, prefetched: prefetched, used: used}
	var el *list.Element
	if cold {
		el = sh.ll.PushBack(b)
		s.coldAdmits.Add(1)
	} else {
		el = sh.ll.PushFront(b)
	}
	m[idx] = el
	sh.cur += int64(len(data))
	for sh.cur > sh.capacity {
		tail := sh.ll.Back()
		if tail == nil {
			break
		}
		sh.removeLocked(tail, s, true)
	}
}

// removeLocked unlinks one entry; countPressure distinguishes capacity
// evictions (which feed the eviction/wasted counters) from invalidation.
func (sh *shard) removeLocked(el *list.Element, s *CachingStore, countPressure bool) {
	b := el.Value.(*block)
	sh.ll.Remove(el)
	sh.cur -= int64(len(b.data))
	if m := sh.blocks[b.key]; m != nil {
		delete(m, b.idx)
		if len(m) == 0 {
			delete(sh.blocks, b.key)
		}
	}
	if countPressure {
		s.evictions.Add(1)
		if b.prefetched && !b.used {
			s.prefWasted.Add(1)
			s.winWasted.Add(1)
		}
	}
}

func (sh *shard) invalidateKey(key string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, el := range sh.blocks[key] {
		b := el.Value.(*block)
		sh.ll.Remove(el)
		sh.cur -= int64(len(b.data))
	}
	delete(sh.blocks, key)
}

func (sh *shard) flush(s *CachingStore) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for el := sh.ll.Front(); el != nil; el = el.Next() {
		b := el.Value.(*block)
		if b.prefetched && !b.used {
			s.prefWasted.Add(1)
			s.winWasted.Add(1)
		}
	}
	sh.ll.Init()
	sh.blocks = make(map[string]map[int64]*list.Element)
	sh.cur = 0
}

var (
	_ objstore.Store             = (*CachingStore)(nil)
	_ objstore.CachedRanger      = (*CachingStore)(nil)
	_ objstore.ParsedFooterCache = (*CachingStore)(nil)
)
