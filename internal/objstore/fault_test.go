package objstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func seedStore(t *testing.T) Store {
	t.Helper()
	m := NewMemory()
	for _, k := range []string{"db/t/a", "db/t/b", "_intermediate/q1/part-0"} {
		if err := m.Put(k, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestFaultStoreFailFirstDeterministic(t *testing.T) {
	fs := NewFaultStore(seedStore(t), FaultConfig{FailFirst: 3})
	for i := 0; i < 3; i++ {
		if _, err := fs.Get("db/t/a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("op %d: err = %v, want ErrInjected", i, err)
		}
	}
	// The budget is spent: everything afterwards is clean.
	for i := 0; i < 5; i++ {
		if _, err := fs.Get("db/t/a"); err != nil {
			t.Fatalf("post-budget op %d failed: %v", i, err)
		}
	}
	st := fs.Stats()
	if st.InjectedErrors != 3 || st.Ops != 8 {
		t.Fatalf("stats = %+v, want 3 injected / 8 ops", st)
	}
}

func TestFaultStoreSeededRatesReplay(t *testing.T) {
	run := func() (FaultStats, []bool) {
		fs := NewFaultStore(seedStore(t), FaultConfig{Seed: 42, ErrorRate: 0.3})
		var outcomes []bool
		for i := 0; i < 50; i++ {
			_, err := fs.Get("db/t/a")
			outcomes = append(outcomes, err == nil)
		}
		return fs.Stats(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("op %d outcome diverged", i)
		}
	}
	if s1.InjectedErrors == 0 || s1.InjectedErrors == 50 {
		t.Fatalf("rate 0.3 over 50 ops injected %d errors", s1.InjectedErrors)
	}
}

func TestFaultStoreTornReadCorruptsSilently(t *testing.T) {
	fs := NewFaultStore(seedStore(t), FaultConfig{TornFirst: 1})
	torn, err := fs.GetRange("db/t/a", 0, 16)
	if err != nil {
		t.Fatalf("torn read must not error at the store API: %v", err)
	}
	clean, err := fs.GetRange("db/t/a", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(torn, clean) {
		t.Fatal("torn read returned clean bytes")
	}
	if len(torn) != len(clean) {
		t.Fatalf("torn read changed length: %d vs %d", len(torn), len(clean))
	}
	// The head half is intact, the tail is flipped — a torn tail, not a
	// truncation.
	if !bytes.Equal(torn[:8], clean[:8]) || bytes.Equal(torn[8:], clean[8:]) {
		t.Fatalf("torn shape wrong: %q vs %q", torn, clean)
	}
	if st := fs.Stats(); st.TornReads != 1 {
		t.Fatalf("TornReads = %d, want 1", st.TornReads)
	}
}

func TestFaultStoreScoping(t *testing.T) {
	// Only GetRange on intermediates is eligible; everything else is clean.
	fs := NewFaultStore(seedStore(t), FaultConfig{
		FailFirst: 100,
		Ops:       []string{"GetRange"},
		Prefix:    "_intermediate/",
	})
	if _, err := fs.Get("_intermediate/q1/part-0"); err != nil {
		t.Fatalf("Get is out of scope, got %v", err)
	}
	if _, err := fs.GetRange("db/t/a", 0, 4); err != nil {
		t.Fatalf("base-table key is out of scope, got %v", err)
	}
	if _, err := fs.GetRange("_intermediate/q1/part-0", 0, 4); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-scope op survived: %v", err)
	}
}

func TestFaultStoreLatencyInjection(t *testing.T) {
	fs := NewFaultStore(seedStore(t), FaultConfig{Seed: 1, Latency: 2 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 20; i++ {
		if _, err := fs.Get("db/t/a"); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("20 ops with ~1ms mean latency took %v", elapsed)
	}
}

func TestFaultConfigRoundTripsAsJSON(t *testing.T) {
	cfg := FaultConfig{Seed: 7, FailFirst: 2, ErrorRate: 0.25, TornRate: 0.5,
		TornFirst: 1, Latency: 3 * time.Millisecond, Ops: []string{"Get"}, Prefix: "x/"}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back FaultConfig
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != cfg.Seed || back.FailFirst != cfg.FailFirst ||
		back.ErrorRate != cfg.ErrorRate || back.TornRate != cfg.TornRate ||
		back.TornFirst != cfg.TornFirst || back.Latency != cfg.Latency ||
		back.Prefix != cfg.Prefix || len(back.Ops) != 1 || back.Ops[0] != "Get" {
		t.Fatalf("round trip lost fields: %+v vs %+v", back, cfg)
	}
}

func TestDeletePrefix(t *testing.T) {
	m := NewMemory()
	for _, k := range []string{
		"_intermediate/q1/part-00000.a0.pxl",
		"_intermediate/q1/part-00001.a0.pxl",
		"_intermediate/q1/part-00001.a1.pxl", // retried attempt's orphan
		"_intermediate/q2/part-00000.a0.pxl", // other query — untouched
		"db/t/data-000000.pxl",
	} {
		if err := m.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	n, err := DeletePrefix(m, IntermediatePrefix("q1"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("deleted %d, want 3", n)
	}
	left, err := m.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("remaining objects: %v", left)
	}
}
