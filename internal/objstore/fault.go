package objstore

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected marks a failure produced by a FaultStore, so tests can tell
// injected faults from genuine store errors with errors.Is.
var ErrInjected = fmt.Errorf("objstore: injected fault")

// FaultConfig says which faults a FaultStore injects. It is plain data
// (JSON-serializable) so a coordinator can ship the exact same fault plan
// to a worker process and both sides reconstruct identical wrappers.
//
// Error scheduling is deterministic two ways: FailFirst makes the first N
// eligible operations fail outright (then the store runs clean — the shape
// retry tests want, since recovery is guaranteed), while ErrorRate draws
// per-operation from a PRNG seeded with Seed (statistically stable, exact
// op unordered under concurrency). Both may be combined.
type FaultConfig struct {
	// Seed seeds the PRNG behind ErrorRate, TornRate and Latency draws.
	Seed int64 `json:"seed"`
	// FailFirst fails the first N eligible operations with ErrInjected.
	FailFirst int `json:"fail_first,omitempty"`
	// ErrorRate is the per-operation probability [0,1) of ErrInjected.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// TornRate is the per-GetRange probability [0,1) of a torn read: the
	// call "succeeds" but the returned bytes are corrupted (bit-flipped
	// tail), the way a read racing an overwrite or a short object copy
	// would look. Torn reads are silent at the store API — catching them is
	// the reader's CRC machinery's job.
	TornRate float64 `json:"torn_rate,omitempty"`
	// TornFirst tears the first N GetRange reads (deterministic counterpart
	// of TornRate, like FailFirst for errors).
	TornFirst int `json:"torn_first,omitempty"`
	// Latency sleeps up to this long (uniform draw) before every
	// operation. Zero disables.
	Latency time.Duration `json:"latency,omitempty"`
	// Ops restricts fault injection to the named operations ("Get",
	// "GetRange", "Put", "Head", "Delete", "List"); empty means all. Reads
	// of keys outside Prefix are always clean.
	Ops []string `json:"ops,omitempty"`
	// Prefix, when non-empty, restricts injection to keys with this
	// prefix (e.g. only base-table objects, or only intermediates).
	Prefix string `json:"prefix,omitempty"`
}

// FaultStats counts what a FaultStore actually did, so tests can assert
// injection happened (a fault test that never fired proves nothing).
type FaultStats struct {
	Ops            int64 // eligible operations seen
	InjectedErrors int64
	TornReads      int64
}

// FaultStore wraps a Store and injects deterministic, seeded faults:
// errors, latency and torn GetRange reads. It is safe for concurrent use
// and intended for any package's tests — wrap the store under an engine,
// a cache, or a worker process and drive recovery paths on purpose.
type FaultStore struct {
	inner Store
	cfg   FaultConfig
	ops   map[string]bool

	mu    sync.Mutex
	rng   *rand.Rand
	fails int // FailFirst consumed
	torn  int // TornFirst consumed
	stats FaultStats
}

// NewFaultStore wraps inner with the given fault plan.
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	f := &FaultStore{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if len(cfg.Ops) > 0 {
		f.ops = make(map[string]bool, len(cfg.Ops))
		for _, op := range cfg.Ops {
			f.ops[op] = true
		}
	}
	return f
}

// Inner returns the wrapped store.
func (f *FaultStore) Inner() Store { return f.inner }

// Stats returns a snapshot of injection counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// eligible reports whether faults apply to this op/key at all.
func (f *FaultStore) eligible(op, key string) bool {
	if f.ops != nil && !f.ops[op] {
		return false
	}
	if f.cfg.Prefix != "" && len(key) >= 0 {
		if len(key) < len(f.cfg.Prefix) || key[:len(f.cfg.Prefix)] != f.cfg.Prefix {
			return false
		}
	}
	return true
}

// before runs the op's latency and error decision. It returns a non-nil
// error when the op must fail, and whether a GetRange result should be
// torn. All PRNG draws happen under the lock in call order, so a given
// serial op sequence replays identically for a given seed.
func (f *FaultStore) before(op, key string) (error, bool) {
	if !f.eligible(op, key) {
		return nil, false
	}
	f.mu.Lock()
	f.stats.Ops++
	var sleep time.Duration
	if f.cfg.Latency > 0 {
		sleep = time.Duration(f.rng.Int63n(int64(f.cfg.Latency)))
	}
	fail := false
	if f.fails < f.cfg.FailFirst {
		f.fails++
		fail = true
	} else if f.cfg.ErrorRate > 0 && f.rng.Float64() < f.cfg.ErrorRate {
		fail = true
	}
	tear := false
	if !fail && op == "GetRange" {
		if f.torn < f.cfg.TornFirst {
			f.torn++
			tear = true
		} else if f.cfg.TornRate > 0 && f.rng.Float64() < f.cfg.TornRate {
			tear = true
		}
	}
	if fail {
		f.stats.InjectedErrors++
	}
	if tear {
		f.stats.TornReads++
	}
	f.mu.Unlock()

	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return fmt.Errorf("%w: %s %s", ErrInjected, op, key), false
	}
	return nil, tear
}

// Put implements Store.
func (f *FaultStore) Put(key string, data []byte) error {
	if err, _ := f.before("Put", key); err != nil {
		return err
	}
	return f.inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key string) ([]byte, error) {
	if err, _ := f.before("Get", key); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}

// GetRange implements Store. A torn read flips bits in the tail half of
// the returned buffer — the data is the right length but wrong, which only
// checksums can catch.
func (f *FaultStore) GetRange(key string, off, length int64) ([]byte, error) {
	err, tear := f.before("GetRange", key)
	if err != nil {
		return nil, err
	}
	data, err := f.inner.GetRange(key, off, length)
	if err != nil || !tear || len(data) == 0 {
		return data, err
	}
	for i := len(data) / 2; i < len(data); i++ {
		data[i] ^= 0xA5
	}
	return data, nil
}

// Head implements Store.
func (f *FaultStore) Head(key string) (ObjectInfo, error) {
	if err, _ := f.before("Head", key); err != nil {
		return ObjectInfo{}, err
	}
	return f.inner.Head(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key string) error {
	if err, _ := f.before("Delete", key); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

// List implements Store.
func (f *FaultStore) List(prefix string) ([]ObjectInfo, error) {
	if err, _ := f.before("List", prefix); err != nil {
		return nil, err
	}
	return f.inner.List(prefix)
}

var _ Store = (*FaultStore)(nil)
