package objstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a Store backed by a local directory. Keys map to files under the
// root, with '/' in keys becoming directory separators. It exists so the
// REST server can persist tables across restarts; the simulators and tests
// use Memory.
type Disk struct {
	root string
	mu   sync.RWMutex
}

// NewDisk returns a store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objstore: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

func (d *Disk) path(key string) (string, error) {
	if key == "" {
		return "", errors.New("objstore: empty key")
	}
	clean := filepath.Clean(filepath.FromSlash(key))
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("objstore: invalid key %q", key)
	}
	return filepath.Join(d.root, clean), nil
}

// Put implements Store.
func (d *Disk) Put(key string, data []byte) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("objstore: put %s: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, error) {
	p, err := d.path(key)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return data, err
}

// GetRange implements Store.
func (d *Disk) GetRange(key string, off, length int64) ([]byte, error) {
	data, err := d.Get(key)
	if err != nil {
		return nil, err
	}
	return sliceRange(data, off, length, key)
}

// Head implements Store.
func (d *Disk) Head(key string) (ObjectInfo, error) {
	p, err := d.path(key)
	if err != nil {
		return ObjectInfo{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	fi, err := os.Stat(p)
	if errors.Is(err, fs.ErrNotExist) {
		return ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return ObjectInfo{}, err
	}
	return ObjectInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()}, nil
}

// Delete implements Store.
func (d *Disk) Delete(key string) error {
	p, err := d.path(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	err = os.Remove(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	// Object stores have no directories; the ones the key's slashes
	// implied are an implementation detail and must not accumulate (the
	// per-query shuffle namespaces would otherwise leave one empty dir
	// each). Stop at the first non-empty parent or the root.
	for dir := filepath.Dir(p); dir != d.root; dir = filepath.Dir(dir) {
		if os.Remove(dir) != nil {
			break
		}
	}
	return nil
}

// List implements Store.
func (d *Disk) List(prefix string) ([]ObjectInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var infos []ObjectInfo
	err := filepath.WalkDir(d.root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil || entry.IsDir() {
			return err
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if !strings.HasPrefix(key, prefix) || strings.HasSuffix(key, ".tmp") {
			return nil
		}
		fi, err := entry.Info()
		if err != nil {
			return err
		}
		infos = append(infos, ObjectInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, nil
}
