package objstore

import "errors"

// IntermediateRoot is the reserved key namespace CF worker intermediates
// live under: `_intermediate/<queryID>/...`. The leading underscore keeps
// it disjoint from table layouts (`<db>/<table>/...`) — no database may be
// named "_intermediate" — so bulk cleanup of a query's exchange objects can
// never touch base-table data.
const IntermediateRoot = "_intermediate/"

// IntermediatePrefix is the object-key prefix holding every intermediate —
// worker outputs of any attempt, including orphans from failed, retried or
// duplicated (straggler-mitigation) workers — of one query.
func IntermediatePrefix(queryID string) string {
	return IntermediateRoot + queryID + "/"
}

// DeletePrefix removes every object under prefix and reports how many it
// deleted. Missing objects (deleted concurrently) are not errors, matching
// S3 delete semantics; other errors abort with the keys already deleted
// counted.
func DeletePrefix(s Store, prefix string) (int, error) {
	infos, err := s.List(prefix)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, info := range infos {
		if err := s.Delete(info.Key); err != nil && !errors.Is(err, ErrNotFound) {
			return n, err
		}
		n++
	}
	return n, nil
}
