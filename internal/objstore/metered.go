package objstore

import (
	"sync"
	"sync/atomic"
)

// Usage is a snapshot of object-storage activity, in the units that
// object-storage billing uses (requests and bytes).
type Usage struct {
	Gets         int64 // GET and ranged GET requests
	Puts         int64 // PUT requests
	Heads        int64 // HEAD requests
	Lists        int64 // LIST requests
	Deletes      int64 // DELETE requests
	BytesRead    int64 // bytes returned by GET/GetRange
	BytesWritten int64 // bytes accepted by PUT

	// Read-cache activity of a cache layered above this store (zero when
	// no cache is attached). Cache hits never add to Gets/BytesRead — they
	// are exactly the requests the store did NOT receive.
	CacheHits      int64 // ranged reads served entirely from the cache
	CacheMisses    int64 // ranged reads that reached this store
	PrefetchWasted int64 // read-ahead blocks evicted without being read
}

// Add returns the component-wise sum of two usages.
func (u Usage) Add(o Usage) Usage {
	return Usage{
		Gets:           u.Gets + o.Gets,
		Puts:           u.Puts + o.Puts,
		Heads:          u.Heads + o.Heads,
		Lists:          u.Lists + o.Lists,
		Deletes:        u.Deletes + o.Deletes,
		BytesRead:      u.BytesRead + o.BytesRead,
		BytesWritten:   u.BytesWritten + o.BytesWritten,
		CacheHits:      u.CacheHits + o.CacheHits,
		CacheMisses:    u.CacheMisses + o.CacheMisses,
		PrefetchWasted: u.PrefetchWasted + o.PrefetchWasted,
	}
}

// Sub returns u - o; used to compute per-query deltas between snapshots.
func (u Usage) Sub(o Usage) Usage {
	return Usage{
		Gets:           u.Gets - o.Gets,
		Puts:           u.Puts - o.Puts,
		Heads:          u.Heads - o.Heads,
		Lists:          u.Lists - o.Lists,
		Deletes:        u.Deletes - o.Deletes,
		BytesRead:      u.BytesRead - o.BytesRead,
		BytesWritten:   u.BytesWritten - o.BytesWritten,
		CacheHits:      u.CacheHits - o.CacheHits,
		CacheMisses:    u.CacheMisses - o.CacheMisses,
		PrefetchWasted: u.PrefetchWasted - o.PrefetchWasted,
	}
}

// Metered wraps a Store and accounts every request. It is the hook through
// which the billing subsystem observes "data scanned".
type Metered struct {
	inner Store

	gets, puts, heads, lists, deletes atomic.Int64
	bytesRead, bytesWritten           atomic.Int64

	mu       sync.Mutex
	scoped   map[string]*Usage // per-scope (e.g. per-query) accounting
	scopeKey func() string     // optional: returns the active scope name

	cache     CacheCounterSource // read cache layered above this store
	cacheBase [3]int64           // counter baseline captured at Reset
}

// CacheCounterSource is the slice of the read-cache layer a Metered store
// snapshots into Usage: monotonic hit/miss/wasted-prefetch counters.
// internal/objstore/cache.CachingStore implements it.
type CacheCounterSource interface {
	CacheCounters() (hits, misses, prefetchWasted int64)
}

// NewMetered wraps inner with request/byte accounting.
func NewMetered(inner Store) *Metered {
	return &Metered{inner: inner, scoped: make(map[string]*Usage)}
}

// Inner returns the wrapped store.
func (m *Metered) Inner() Store { return m.inner }

// AttachCache points the metering at a read cache layered above this
// store, so Usage snapshots include the requests the cache absorbed
// (hits) alongside the ones that reached the store (misses).
func (m *Metered) AttachCache(src CacheCounterSource) {
	m.mu.Lock()
	m.cache = src
	m.cacheBase = [3]int64{}
	m.mu.Unlock()
}

// Usage returns the cumulative usage since construction (or the last Reset).
func (m *Metered) Usage() Usage {
	u := Usage{
		Gets:         m.gets.Load(),
		Puts:         m.puts.Load(),
		Heads:        m.heads.Load(),
		Lists:        m.lists.Load(),
		Deletes:      m.deletes.Load(),
		BytesRead:    m.bytesRead.Load(),
		BytesWritten: m.bytesWritten.Load(),
	}
	m.mu.Lock()
	if m.cache != nil {
		h, miss, w := m.cache.CacheCounters()
		u.CacheHits = h - m.cacheBase[0]
		u.CacheMisses = miss - m.cacheBase[1]
		u.PrefetchWasted = w - m.cacheBase[2]
	}
	m.mu.Unlock()
	return u
}

// Reset zeroes the cumulative counters. The attached cache's counters are
// monotonic and owned by the cache, so Reset re-baselines them instead.
func (m *Metered) Reset() {
	m.gets.Store(0)
	m.puts.Store(0)
	m.heads.Store(0)
	m.lists.Store(0)
	m.deletes.Store(0)
	m.bytesRead.Store(0)
	m.bytesWritten.Store(0)
	m.mu.Lock()
	if m.cache != nil {
		h, miss, w := m.cache.CacheCounters()
		m.cacheBase = [3]int64{h, miss, w}
	}
	m.mu.Unlock()
}

// Put implements Store.
func (m *Metered) Put(key string, data []byte) error {
	err := m.inner.Put(key, data)
	if err == nil {
		m.puts.Add(1)
		m.bytesWritten.Add(int64(len(data)))
	}
	return err
}

// Get implements Store.
func (m *Metered) Get(key string) ([]byte, error) {
	data, err := m.inner.Get(key)
	if err == nil {
		m.gets.Add(1)
		m.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

// GetRange implements Store.
func (m *Metered) GetRange(key string, off, length int64) ([]byte, error) {
	data, err := m.inner.GetRange(key, off, length)
	if err == nil {
		m.gets.Add(1)
		m.bytesRead.Add(int64(len(data)))
	}
	return data, err
}

// Head implements Store.
func (m *Metered) Head(key string) (ObjectInfo, error) {
	info, err := m.inner.Head(key)
	if err == nil {
		m.heads.Add(1)
	}
	return info, err
}

// Delete implements Store.
func (m *Metered) Delete(key string) error {
	err := m.inner.Delete(key)
	if err == nil {
		m.deletes.Add(1)
	}
	return err
}

// List implements Store.
func (m *Metered) List(prefix string) ([]ObjectInfo, error) {
	infos, err := m.inner.List(prefix)
	if err == nil {
		m.lists.Add(1)
	}
	return infos, err
}

var _ Store = (*Metered)(nil)
var _ Store = (*Memory)(nil)
var _ Store = (*Disk)(nil)
