package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// storeSuite exercises the Store contract against any implementation.
func storeSuite(t *testing.T, s Store) {
	t.Helper()

	// Missing key behaviours.
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) err = %v, want ErrNotFound", err)
	}
	if _, err := s.Head("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Head(missing) err = %v, want ErrNotFound", err)
	}
	if err := s.Delete("missing"); err != nil {
		t.Errorf("Delete(missing) err = %v, want nil (S3 semantics)", err)
	}

	// Put / Get round trip.
	data := []byte("hello, columnar world")
	if err := s.Put("db/tbl/file-0.pxl", data); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("db/tbl/file-0.pxl")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, err)
	}

	// Overwrite.
	if err := s.Put("db/tbl/file-0.pxl", []byte("v2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	got, _ = s.Get("db/tbl/file-0.pxl")
	if string(got) != "v2" {
		t.Fatalf("overwrite visible = %q", got)
	}
	if err := s.Put("db/tbl/file-0.pxl", data); err != nil {
		t.Fatal(err)
	}

	// Range reads.
	rng, err := s.GetRange("db/tbl/file-0.pxl", 7, 8)
	if err != nil || string(rng) != "columnar" {
		t.Fatalf("GetRange = %q, %v", rng, err)
	}
	rng, err = s.GetRange("db/tbl/file-0.pxl", 7, -1)
	if err != nil || string(rng) != "columnar world" {
		t.Fatalf("GetRange to end = %q, %v", rng, err)
	}
	if _, err := s.GetRange("db/tbl/file-0.pxl", 7, 1000); err == nil {
		t.Errorf("GetRange past end did not error")
	}
	if _, err := s.GetRange("db/tbl/file-0.pxl", -1, 2); err == nil {
		t.Errorf("GetRange negative offset did not error")
	}

	// Head.
	info, err := s.Head("db/tbl/file-0.pxl")
	if err != nil || info.Size != int64(len(data)) {
		t.Fatalf("Head = %+v, %v", info, err)
	}

	// List with prefix, sorted.
	if err := s.Put("db/tbl/file-1.pxl", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("db/other/file-9.pxl", []byte("y")); err != nil {
		t.Fatal(err)
	}
	infos, err := s.List("db/tbl/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("List = %v, %v", infos, err)
	}
	if infos[0].Key != "db/tbl/file-0.pxl" || infos[1].Key != "db/tbl/file-1.pxl" {
		t.Fatalf("List order wrong: %v", infos)
	}

	// Delete removes.
	if err := s.Delete("db/tbl/file-1.pxl"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("db/tbl/file-1.pxl"); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted key still present")
	}

	// Empty key rejected.
	if err := s.Put("", []byte("x")); err == nil {
		t.Errorf("Put with empty key accepted")
	}

	// Mutating the returned buffer must not corrupt the store.
	got, _ = s.Get("db/tbl/file-0.pxl")
	for i := range got {
		got[i] = 0
	}
	got2, _ := s.Get("db/tbl/file-0.pxl")
	if !bytes.Equal(got2, data) {
		t.Errorf("store corrupted by caller mutation")
	}
}

func TestMemoryStore(t *testing.T) { storeSuite(t, NewMemory()) }

func TestDiskStore(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeSuite(t, d)
}

func TestMeteredStore(t *testing.T) {
	m := NewMetered(NewMemory())
	storeSuite(t, m)
}

func TestDiskRejectsTraversal(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("../evil", []byte("x")); err == nil {
		t.Fatalf("path traversal accepted")
	}
	if err := d.Put("/abs", []byte("x")); err == nil {
		t.Fatalf("absolute key accepted")
	}
}

// Deleting the last object under a key prefix must not leave the empty
// directories the key's slashes implied — one swept per-query shuffle
// namespace would otherwise accumulate one empty dir per query.
func TestDiskDeletePrunesEmptyDirs(t *testing.T) {
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	keep := "db/tbl/file-0.pxl"
	if err := d.Put(keep, []byte("k")); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"_intermediate/q-1/part-0.a0.pxl", "_intermediate/q-1/part-1.a0.pxl"} {
		if err := d.Put(key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Deleting one of two objects keeps the shared parent.
	if err := d.Delete("_intermediate/q-1/part-0.a0.pxl"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "_intermediate", "q-1")); err != nil {
		t.Fatalf("shared parent removed early: %v", err)
	}
	// Deleting the last one prunes q-1 and _intermediate but not the root.
	if err := d.Delete("_intermediate/q-1/part-1.a0.pxl"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "_intermediate")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("empty _intermediate dir left behind: %v", err)
	}
	if _, err := d.Get(keep); err != nil {
		t.Fatalf("unrelated object lost: %v", err)
	}
}

func TestMeteredCounts(t *testing.T) {
	m := NewMetered(NewMemory())
	if err := m.Put("a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetRange("a", 0, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Head("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.List(""); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	// Failed request should not count.
	if _, err := m.Get("missing"); err == nil {
		t.Fatal("expected miss")
	}
	u := m.Usage()
	want := Usage{Gets: 2, Puts: 1, Heads: 1, Lists: 1, Deletes: 1, BytesRead: 140, BytesWritten: 100}
	if u != want {
		t.Fatalf("Usage = %+v, want %+v", u, want)
	}
	m.Reset()
	if m.Usage() != (Usage{}) {
		t.Fatalf("Reset did not zero: %+v", m.Usage())
	}
}

func TestUsageAddSub(t *testing.T) {
	a := Usage{Gets: 3, Puts: 1, BytesRead: 100}
	b := Usage{Gets: 1, BytesRead: 40, BytesWritten: 7}
	sum := a.Add(b)
	if sum.Gets != 4 || sum.BytesRead != 140 || sum.BytesWritten != 7 || sum.Puts != 1 {
		t.Fatalf("Add = %+v", sum)
	}
	if d := sum.Sub(b); d != a {
		t.Fatalf("Sub = %+v, want %+v", d, a)
	}
}

func TestMemoryConcurrentAccess(t *testing.T) {
	m := NewMetered(NewMemory())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k/%d/%d", g, i)
				if err := m.Put(key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	infos, err := m.List("k/")
	if err != nil || len(infos) != 400 {
		t.Fatalf("List after concurrency = %d objects, %v", len(infos), err)
	}
	u := m.Usage()
	if u.Puts != 400 || u.Gets != 400 {
		t.Fatalf("usage after concurrency: %+v", u)
	}
}

// TestParallelGetRange exercises every backend under concurrent ranged
// reads of shared and private keys — the access pattern of parallel
// VM-side workers — and verifies served bytes. Run with -race.
func TestParallelGetRange(t *testing.T) {
	const n = 64 << 10
	blob := make([]byte, n)
	for i := range blob {
		blob[i] = byte(i*31 + i/7)
	}
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backends := map[string]Store{
		"memory":  NewMemory(),
		"disk":    disk,
		"metered": NewMetered(NewMemory()),
	}
	for name, s := range backends {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("shared", blob); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					key := "shared"
					if g%2 == 1 { // half the readers use a private key
						key = fmt.Sprintf("own/%d", g)
						if err := s.Put(key, blob); err != nil {
							t.Error(err)
							return
						}
					}
					for i := 0; i < 64; i++ {
						off := int64((g*997 + i*8191) % (n - 512))
						got, err := s.GetRange(key, off, 512)
						if err != nil || !bytes.Equal(got, blob[off:off+512]) {
							t.Errorf("g%d read %s@%d: %v", g, key, off, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// fakeCacheSource is a settable CacheCounterSource.
type fakeCacheSource struct{ hits, misses, wasted int64 }

func (f *fakeCacheSource) CacheCounters() (int64, int64, int64) {
	return f.hits, f.misses, f.wasted
}

func TestMeteredCacheCounters(t *testing.T) {
	m := NewMetered(NewMemory())
	if u := m.Usage(); u.CacheHits != 0 || u.CacheMisses != 0 || u.PrefetchWasted != 0 {
		t.Fatalf("cache counters nonzero with no cache attached: %+v", u)
	}
	src := &fakeCacheSource{hits: 10, misses: 4, wasted: 1}
	m.AttachCache(src)
	u := m.Usage()
	if u.CacheHits != 10 || u.CacheMisses != 4 || u.PrefetchWasted != 1 {
		t.Fatalf("Usage cache counters = %+v", u)
	}
	// Reset re-baselines the monotonic cache counters.
	m.Reset()
	src.hits, src.misses, src.wasted = 13, 5, 2
	u = m.Usage()
	if u.CacheHits != 3 || u.CacheMisses != 1 || u.PrefetchWasted != 1 {
		t.Fatalf("post-Reset deltas = %+v, want 3/1/1", u)
	}
	// Deltas via Sub carry the cache fields too.
	d := u.Sub(Usage{CacheHits: 1})
	if d.CacheHits != 2 {
		t.Fatalf("Sub cache fields = %+v", d)
	}
}

func TestRangeReadProperty(t *testing.T) {
	s := NewMemory()
	blob := make([]byte, 1024)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	if err := s.Put("blob", blob); err != nil {
		t.Fatal(err)
	}
	f := func(off, length uint16) bool {
		o := int64(off) % 1024
		l := int64(length) % (1024 - o + 1)
		got, err := s.GetRange("blob", o, l)
		if err != nil {
			return false
		}
		return bytes.Equal(got, blob[o:o+l])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
