// Package objstore implements the cloud object storage substrate that
// PixelsDB stores base tables and CF-produced intermediate results in
// (the paper's "cloud object storage, such as AWS S3").
//
// The package provides a Store interface with memory and on-disk backends,
// plus a metering wrapper that accounts requests and bytes the way
// object-storage billing does. Bytes-scanned accounting feeds the
// $/TB-scan prices in internal/billing.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a key does not exist.
var ErrNotFound = errors.New("objstore: key not found")

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// Store is the object storage API. Keys are flat strings; "directories"
// are a convention of '/' separators, as in S3.
type Store interface {
	// Put stores data under key, replacing any existing object.
	Put(key string, data []byte) error
	// Get returns the full object.
	Get(key string) ([]byte, error)
	// GetRange returns length bytes starting at off. A negative length
	// means "to the end of the object".
	GetRange(key string, off, length int64) ([]byte, error)
	// Head returns metadata without reading data.
	Head(key string) (ObjectInfo, error)
	// Delete removes the object. Deleting a missing key is not an error,
	// matching S3 semantics.
	Delete(key string) error
	// List returns objects whose keys start with prefix, sorted by key.
	List(prefix string) ([]ObjectInfo, error)
}

// CachedRanger is implemented by stores layered over a read cache (see
// internal/objstore/cache) that can report whether a ranged read was
// served entirely from cache, without any request to the backing store.
// The engine uses it to attribute per-query cache hits and misses in
// query statistics; billed bytes-scanned are accounted reader-side and
// are identical either way.
type CachedRanger interface {
	GetRangeCached(key string, off, length int64) (data []byte, hit bool, err error)
}

// ParsedFooterCache is implemented by caching stores that can additionally
// retain one decoded footer object per (key, size) — sparing readers the
// footer fetch, CRC-guarded tail validation and parse on every reopen, not
// just the store request. The cached value is opaque to the store (it is
// the reader's parsed representation); it must be immutable, since any
// number of concurrent readers may share it. Entries are dropped whenever
// the key is written or deleted through the store, and a stored size
// mismatch misses, so a value can never outlive the bytes it was parsed
// from. Readers must keep billing the footer bytes as scanned on hits —
// like every cache layer here, this trades requests and CPU, never billed
// bytes.
type ParsedFooterCache interface {
	ParsedFooter(key string, size int64) (footer any, ok bool)
	StoreParsedFooter(key string, size int64, footer any)
}

// Memory is an in-memory Store. It is safe for concurrent use.
type Memory struct {
	mu      sync.RWMutex
	objects map[string]memObject
}

type memObject struct {
	data    []byte
	modTime time.Time
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{objects: make(map[string]memObject)}
}

// Put implements Store.
func (m *Memory) Put(key string, data []byte) error {
	if key == "" {
		return errors.New("objstore: empty key")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[key] = memObject{data: cp, modTime: time.Now()}
	m.mu.Unlock()
	return nil
}

// Get implements Store.
func (m *Memory) Get(key string) ([]byte, error) {
	m.mu.RLock()
	obj, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(obj.data))
	copy(cp, obj.data)
	return cp, nil
}

// GetRange implements Store.
func (m *Memory) GetRange(key string, off, length int64) ([]byte, error) {
	m.mu.RLock()
	obj, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return sliceRange(obj.data, off, length, key)
}

// Head implements Store.
func (m *Memory) Head(key string) (ObjectInfo, error) {
	m.mu.RLock()
	obj, ok := m.objects[key]
	m.mu.RUnlock()
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return ObjectInfo{Key: key, Size: int64(len(obj.data)), ModTime: obj.modTime}, nil
}

// Delete implements Store.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	delete(m.objects, key)
	m.mu.Unlock()
	return nil
}

// List implements Store.
func (m *Memory) List(prefix string) ([]ObjectInfo, error) {
	m.mu.RLock()
	var infos []ObjectInfo
	for k, obj := range m.objects {
		if strings.HasPrefix(k, prefix) {
			infos = append(infos, ObjectInfo{Key: k, Size: int64(len(obj.data)), ModTime: obj.modTime})
		}
	}
	m.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, nil
}

func sliceRange(data []byte, off, length int64, key string) ([]byte, error) {
	size := int64(len(data))
	if off < 0 || off > size {
		return nil, fmt.Errorf("objstore: range offset %d out of bounds for %s (size %d)", off, key, size)
	}
	end := size
	if length >= 0 {
		end = off + length
		if end > size {
			return nil, fmt.Errorf("objstore: range [%d,%d) out of bounds for %s (size %d)", off, end, key, size)
		}
	}
	cp := make([]byte, end-off)
	copy(cp, data[off:end])
	return cp, nil
}
