// Package vmsim simulates the auto-scaled virtual-machine cluster that
// Pixels-Turbo uses as its cost-efficient compute tier.
//
// The simulator models exactly the properties the paper's scheduler
// depends on: VMs take 1–2 minutes to boot (the elasticity lag that CF
// acceleration papers over), expose a fixed number of task slots, and are
// billed per second from launch. It runs on a vclock.Clock, so the
// benchmark harness can drive hours of cluster time in microseconds.
package vmsim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Config parameterizes the cluster.
type Config struct {
	// SlotsPerVM is the number of concurrently executing tasks one VM
	// sustains (default 4).
	SlotsPerVM int
	// BootDelay is how long a VM takes from launch to ready (default 90s,
	// inside the paper's "1-2 minutes").
	BootDelay time.Duration
	// PricePerSecond is the per-VM per-second price (default models an
	// $0.096/hour instance).
	PricePerSecond float64
	// BootFailureProb injects launch failures: the VM never becomes
	// ready and is removed at its would-be ready time.
	BootFailureProb float64
	// Seed drives failure injection deterministically.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.SlotsPerVM <= 0 {
		c.SlotsPerVM = 4
	}
	if c.BootDelay <= 0 {
		c.BootDelay = 90 * time.Second
	}
	if c.PricePerSecond <= 0 {
		c.PricePerSecond = 0.096 / 3600
	}
	return c
}

// vmState is a VM's lifecycle phase.
type vmState uint8

const (
	vmBooting vmState = iota
	vmRunning
)

type vm struct {
	id       int
	state    vmState
	launched time.Time
	busy     int
}

// Metrics is a point-in-time cluster snapshot.
type Metrics struct {
	Time        time.Time
	Running     int // ready VMs
	Booting     int
	TotalSlots  int // slots on ready VMs
	BusySlots   int
	Utilization float64 // busy/total (0 when no slots)
	BootsFailed int
}

// Cluster is the simulated VM fleet.
type Cluster struct {
	clock vclock.Clock
	cfg   Config

	mu          sync.Mutex
	vms         map[int]*vm
	nextID      int
	rng         *rand.Rand
	doneCost    float64 // accrued cost of terminated VMs
	bootsFailed int
	onReady     func() // fires (outside the lock) when capacity appears
}

// NewCluster launches a cluster with `initial` VMs already running
// (bootstrapping a warm cluster, as a long-lived deployment would have).
func NewCluster(clock vclock.Clock, cfg Config, initial int) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		clock: clock,
		cfg:   cfg,
		vms:   make(map[int]*vm),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	now := clock.Now()
	for i := 0; i < initial; i++ {
		c.vms[c.nextID] = &vm{id: c.nextID, state: vmRunning, launched: now}
		c.nextID++
	}
	return c
}

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// SetOnReady registers a callback invoked whenever new capacity becomes
// available (a VM finishes booting or a slot is released). The scheduler
// uses it to drain its pending queue.
func (c *Cluster) SetOnReady(fn func()) {
	c.mu.Lock()
	c.onReady = fn
	c.mu.Unlock()
}

func (c *Cluster) notifyReady() {
	c.mu.Lock()
	fn := c.onReady
	c.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Launch boots n new VMs. They become ready after BootDelay.
func (c *Cluster) Launch(n int) {
	c.mu.Lock()
	now := c.clock.Now()
	for i := 0; i < n; i++ {
		id := c.nextID
		c.nextID++
		fail := c.rng.Float64() < c.cfg.BootFailureProb
		c.vms[id] = &vm{id: id, state: vmBooting, launched: now}
		c.clock.AfterFunc(c.cfg.BootDelay, func() {
			c.finishBoot(id, fail)
		})
	}
	c.mu.Unlock()
}

func (c *Cluster) finishBoot(id int, fail bool) {
	c.mu.Lock()
	v, ok := c.vms[id]
	if !ok || v.state != vmBooting {
		c.mu.Unlock()
		return
	}
	if fail {
		// Failed launch: billed until failure, then gone.
		c.doneCost += c.clock.Now().Sub(v.launched).Seconds() * c.cfg.PricePerSecond
		c.bootsFailed++
		delete(c.vms, id)
		c.mu.Unlock()
		return
	}
	v.state = vmRunning
	c.mu.Unlock()
	c.notifyReady()
}

// Terminate shuts down up to n idle VMs, returning how many actually
// stopped. Busy VMs are never interrupted; the autoscaler retries on its
// next tick.
func (c *Cluster) Terminate(n int) int {
	c.mu.Lock()
	now := c.clock.Now()
	stopped := 0
	for id, v := range c.vms {
		if stopped >= n {
			break
		}
		if v.state == vmRunning && v.busy == 0 {
			c.doneCost += now.Sub(v.launched).Seconds() * c.cfg.PricePerSecond
			delete(c.vms, id)
			stopped++
		}
	}
	c.mu.Unlock()
	return stopped
}

// Size returns (running, booting) VM counts.
func (c *Cluster) Size() (running, booting int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range c.vms {
		if v.state == vmRunning {
			running++
		} else {
			booting++
		}
	}
	return
}

// Lease is an acquired slot. Release returns it.
type Lease struct {
	c    *Cluster
	vmID int
	once sync.Once
}

// Release frees the slot.
func (l *Lease) Release() {
	l.once.Do(func() {
		l.c.mu.Lock()
		if v, ok := l.c.vms[l.vmID]; ok && v.busy > 0 {
			v.busy--
		}
		l.c.mu.Unlock()
		l.c.notifyReady()
	})
}

// TryAcquire claims one slot on a ready VM, preferring the busiest VM so
// idle VMs stay fully idle and can be scaled in. ok is false when the
// cluster has no free slot.
func (c *Cluster) TryAcquire() (*Lease, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *vm
	for _, v := range c.vms {
		if v.state != vmRunning || v.busy >= c.cfg.SlotsPerVM {
			continue
		}
		if best == nil || v.busy > best.busy || (v.busy == best.busy && v.id < best.id) {
			best = v
		}
	}
	if best == nil {
		return nil, false
	}
	best.busy++
	return &Lease{c: c, vmID: best.id}, true
}

// FreeSlots counts available slots on ready VMs.
func (c *Cluster) FreeSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	free := 0
	for _, v := range c.vms {
		if v.state == vmRunning {
			free += c.cfg.SlotsPerVM - v.busy
		}
	}
	return free
}

// Snapshot returns current metrics.
func (c *Cluster) Snapshot() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{Time: c.clock.Now(), BootsFailed: c.bootsFailed}
	for _, v := range c.vms {
		if v.state == vmRunning {
			m.Running++
			m.TotalSlots += c.cfg.SlotsPerVM
			m.BusySlots += v.busy
		} else {
			m.Booting++
		}
	}
	if m.TotalSlots > 0 {
		m.Utilization = float64(m.BusySlots) / float64(m.TotalSlots)
	}
	return m
}

// AccruedCost returns the total VM cost from simulation start to now:
// terminated VMs' full runtimes plus live VMs' runtime so far. VMs are
// billed from launch, so boot time costs money — that is the inefficiency
// that makes reactive scaling expensive and grace periods valuable.
func (c *Cluster) AccruedCost() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	cost := c.doneCost
	for _, v := range c.vms {
		cost += now.Sub(v.launched).Seconds() * c.cfg.PricePerSecond
	}
	return cost
}

// String summarizes the cluster for logs.
func (c *Cluster) String() string {
	m := c.Snapshot()
	return fmt.Sprintf("vms[run=%d boot=%d slots=%d/%d util=%.0f%%]",
		m.Running, m.Booting, m.BusySlots, m.TotalSlots, m.Utilization*100)
}
