package vmsim

import (
	"testing"
	"time"

	"repro/internal/vclock"
)

var t0 = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)

func TestInitialClusterIsReady(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{SlotsPerVM: 2}, 3)
	m := c.Snapshot()
	if m.Running != 3 || m.Booting != 0 || m.TotalSlots != 6 {
		t.Fatalf("snapshot = %+v", m)
	}
}

func TestBootDelay(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{BootDelay: 90 * time.Second}, 0)
	c.Launch(2)
	if r, b := c.Size(); r != 0 || b != 2 {
		t.Fatalf("immediately after launch: run=%d boot=%d", r, b)
	}
	clk.Advance(89 * time.Second)
	if r, _ := c.Size(); r != 0 {
		t.Fatalf("ready before boot delay")
	}
	clk.Advance(2 * time.Second)
	if r, b := c.Size(); r != 2 || b != 0 {
		t.Fatalf("after boot delay: run=%d boot=%d", r, b)
	}
}

func TestOnReadyCallbackAfterBoot(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{BootDelay: time.Minute}, 0)
	fired := 0
	c.SetOnReady(func() { fired++ })
	c.Launch(1)
	clk.Advance(time.Minute)
	if fired != 1 {
		t.Fatalf("onReady fired %d times", fired)
	}
}

func TestAcquireReleasePacking(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{SlotsPerVM: 2}, 2)
	// 4 slots total.
	var leases []*Lease
	for i := 0; i < 4; i++ {
		l, ok := c.TryAcquire()
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		leases = append(leases, l)
	}
	if _, ok := c.TryAcquire(); ok {
		t.Fatalf("acquired beyond capacity")
	}
	if c.FreeSlots() != 0 {
		t.Fatalf("free = %d", c.FreeSlots())
	}
	leases[0].Release()
	leases[0].Release() // double release is a no-op
	if c.FreeSlots() != 1 {
		t.Fatalf("free after release = %d", c.FreeSlots())
	}
	if _, ok := c.TryAcquire(); !ok {
		t.Fatalf("cannot acquire after release")
	}
}

func TestPackingPrefersBusyVM(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{SlotsPerVM: 4}, 2)
	// Two acquisitions should land on the same VM (packing), leaving the
	// other idle and terminable.
	l1, _ := c.TryAcquire()
	l2, _ := c.TryAcquire()
	if l1.vmID != l2.vmID {
		t.Fatalf("not packed: %d vs %d", l1.vmID, l2.vmID)
	}
	if n := c.Terminate(2); n != 1 {
		t.Fatalf("terminated %d idle VMs, want 1", n)
	}
}

func TestTerminateSkipsBusy(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{SlotsPerVM: 1}, 2)
	l, _ := c.TryAcquire()
	if n := c.Terminate(2); n != 1 {
		t.Fatalf("terminated %d, want only the idle one", n)
	}
	l.Release()
	if n := c.Terminate(2); n != 1 {
		t.Fatalf("terminated %d after release", n)
	}
	if r, _ := c.Size(); r != 0 {
		t.Fatalf("cluster not empty: %d", r)
	}
}

func TestCostAccrual(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	price := 0.01 // $/s for easy math
	c := NewCluster(clk, Config{PricePerSecond: price}, 1)
	clk.Advance(100 * time.Second)
	if got := c.AccruedCost(); got < 0.99 || got > 1.01 {
		t.Fatalf("running cost = %f, want ~1.00", got)
	}
	c.Terminate(1)
	clk.Advance(100 * time.Second)
	if got := c.AccruedCost(); got < 0.99 || got > 1.01 {
		t.Fatalf("terminated VM kept accruing: %f", got)
	}
}

func TestBootingVMsCostMoney(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{PricePerSecond: 0.01, BootDelay: 100 * time.Second}, 0)
	c.Launch(1)
	clk.Advance(50 * time.Second)
	if got := c.AccruedCost(); got < 0.49 || got > 0.51 {
		t.Fatalf("boot-time cost = %f, want ~0.50", got)
	}
}

func TestBootFailureInjection(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{BootDelay: time.Second, BootFailureProb: 1.0, Seed: 42}, 0)
	c.Launch(3)
	clk.Advance(2 * time.Second)
	r, b := c.Size()
	if r != 0 || b != 0 {
		t.Fatalf("failed boots still present: run=%d boot=%d", r, b)
	}
	if c.Snapshot().BootsFailed != 3 {
		t.Fatalf("BootsFailed = %d", c.Snapshot().BootsFailed)
	}
}

func TestUtilizationMetric(t *testing.T) {
	clk := vclock.NewVirtual(t0)
	c := NewCluster(clk, Config{SlotsPerVM: 2}, 2)
	l, _ := c.TryAcquire()
	m := c.Snapshot()
	if m.Utilization != 0.25 {
		t.Fatalf("utilization = %f", m.Utilization)
	}
	l.Release()
	if c.Snapshot().Utilization != 0 {
		t.Fatalf("utilization after release = %f", c.Snapshot().Utilization)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.SlotsPerVM != 4 || cfg.BootDelay != 90*time.Second || cfg.PricePerSecond <= 0 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
