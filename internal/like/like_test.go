package like_test

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/like"
)

// naive is the unspecialized reference: the same regexp conversion the
// interpreter used before the matcher fast paths existed.
func naive(t *testing.T, pat string) *regexp.Regexp {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pat {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		t.Fatalf("reference regexp for %q: %v", pat, err)
	}
	return re
}

func TestKinds(t *testing.T) {
	cases := []struct {
		pat  string
		kind like.Kind
	}{
		{"abc", like.Exact},
		{"", like.Exact},
		{"abc%", like.Prefix},
		{"abc%%", like.Prefix},
		{"%abc", like.Suffix},
		{"%%abc", like.Suffix},
		{"%", like.Suffix},
		{"%%", like.Suffix},
		{"%abc%", like.Contains},
		{"%%abc%%", like.Contains},
		{"a_c", like.Regex},
		{"a%c", like.Regex},
		{"%a%c%", like.Regex},
		{"_%", like.Regex},
		{"%a_", like.Regex},
	}
	for _, c := range cases {
		m, err := like.Compile(c.pat)
		if err != nil {
			t.Fatalf("%q: %v", c.pat, err)
		}
		if m.Kind() != c.kind {
			t.Errorf("%q: kind %d, want %d", c.pat, m.Kind(), c.kind)
		}
	}
}

// TestMatchEquivalence: every specialization must agree with the anchored
// regexp it replaces, over random patterns (including newline-bearing and
// regex-metacharacter inputs) and random subjects.
func TestMatchEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	alphabet := []rune("ab%_.c*\n(")
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for trial := 0; trial < 2000; trial++ {
		pat := randStr(r.Intn(8))
		m, err := like.Compile(pat)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		re := naive(t, pat)
		for probe := 0; probe < 8; probe++ {
			s := randStr(r.Intn(10))
			if got, want := m.Match(s), re.MatchString(s); got != want {
				t.Fatalf("pattern %q (kind %d) on %q: %v, want %v", pat, m.Kind(), s, got, want)
			}
		}
	}
}
