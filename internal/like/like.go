// Package like compiles SQL LIKE patterns ('%' matches any run, '_' any
// single character) into matchers specialized by shape: patterns without
// wildcards become an equality test, a single leading/trailing '%' run
// becomes a suffix/prefix test, a literal between two '%' runs becomes a
// substring test, and everything else compiles to an anchored regexp. The
// specializations are shared by the row-at-a-time exec.Evaluator and the
// internal/vec kernels, so the interpreted fallback and the kernel path
// agree on exactly the same fast paths (and, by construction, the same
// semantics: each fast path is provably equivalent to the regexp it
// replaces).
package like

import (
	"fmt"
	"regexp"
	"strings"
)

// Kind is the matcher specialization.
type Kind uint8

const (
	// Exact: the pattern has no wildcards; match is string equality.
	Exact Kind = iota
	// Prefix: the only wildcards are a trailing '%' run.
	Prefix
	// Suffix: the only wildcards are a leading '%' run.
	Suffix
	// Contains: a wildcard-free literal between a leading and a trailing
	// '%' run (a bare "%" is Suffix with an empty literal, which matches
	// everything).
	Contains
	// Regex: any other pattern — '_' anywhere, or an interior '%'.
	Regex
)

// Matcher is a compiled LIKE pattern. The zero value matches only the
// empty string (Exact, empty literal). Matchers are immutable and safe for
// concurrent use.
type Matcher struct {
	kind Kind
	lit  string
	re   *regexp.Regexp
}

// Kind reports the specialization chosen for the pattern.
func (m Matcher) Kind() Kind { return m.kind }

// Compile builds a matcher for a SQL LIKE pattern.
func Compile(pat string) (Matcher, error) {
	body := pat
	lead := 0
	for lead < len(body) && body[lead] == '%' {
		lead++
	}
	body = body[lead:]
	trail := len(body)
	for trail > 0 && body[trail-1] == '%' {
		trail--
	}
	hadTrail := trail < len(body)
	body = body[:trail]
	if !strings.ContainsAny(body, "%_") {
		switch {
		case lead == 0 && !hadTrail:
			return Matcher{kind: Exact, lit: body}, nil
		case lead == 0:
			return Matcher{kind: Prefix, lit: body}, nil
		case !hadTrail:
			return Matcher{kind: Suffix, lit: body}, nil
		default:
			return Matcher{kind: Contains, lit: body}, nil
		}
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pat {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return Matcher{}, fmt.Errorf("like: bad pattern %q: %w", pat, err)
	}
	return Matcher{kind: Regex, re: re}, nil
}

// Match reports whether s matches the pattern.
func (m Matcher) Match(s string) bool {
	switch m.kind {
	case Exact:
		return s == m.lit
	case Prefix:
		return strings.HasPrefix(s, m.lit)
	case Suffix:
		return strings.HasSuffix(s, m.lit)
	case Contains:
		return strings.Contains(s, m.lit)
	default:
		return m.re.MatchString(s)
	}
}
