package disttest

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/sql"
)

// failFirstAttempts makes attempt 0 of every task fail deterministically:
// the worker process gets a fault plan under which every store operation
// errors, so a query can only succeed if the coordinator retried each task
// in a fresh worker.
func failFirstAttempts(req *engine.WorkerRequest) *objstore.FaultConfig {
	if req.Attempt == 0 {
		return &objstore.FaultConfig{FailFirst: 1 << 30}
	}
	return nil
}

// TestRecoversFromWorkerStoreErrors: injected store errors inside worker
// processes must be invisible to the caller — same rows, same billed bytes,
// same stats as a fault-free run, and no leftover intermediates.
func TestRecoversFromWorkerStoreErrors(t *testing.T) {
	e, dir := fixture(t)
	for _, q := range experimentQueries {
		serial := runSerial(t, e, q)
		clean := runDistributed(t, e, q, engine.DistOptions{Parts: 4, Invoker: processInvoker(dir)})

		proc := processInvoker(dir)
		proc.FaultFor = failFirstAttempts
		recovered := runDistributed(t, e, q, engine.DistOptions{Parts: 4, Invoker: proc, Retries: 1})

		expectSameRows(t, q+" recovered", serial, recovered)
		expectSameBilling(t, q+" recovered", serial, recovered)
		if recovered.Stats != clean.Stats {
			t.Fatalf("%q: recovered stats %+v vs fault-free %+v — failed attempts were billed", q, recovered.Stats, clean.Stats)
		}
	}
	infos, err := e.Store().List(objstore.IntermediateRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("orphan intermediates after recovery: %v", infos)
	}
}

// TestSeededErrorRateRecovery: a seeded random error rate on first attempts
// (the realistic flaky-store case, not the deterministic always-fail one)
// must also recover within the retry budget.
func TestSeededErrorRateRecovery(t *testing.T) {
	e, dir := fixture(t)
	q := experimentQueries[0]
	serial := runSerial(t, e, q)

	proc := processInvoker(dir)
	proc.FaultFor = func(req *engine.WorkerRequest) *objstore.FaultConfig {
		if req.Attempt == 0 {
			return &objstore.FaultConfig{Seed: int64(req.Task + 1), ErrorRate: 0.2}
		}
		return nil
	}
	recovered := runDistributed(t, e, q, engine.DistOptions{Parts: 8, Invoker: proc, Retries: 1})
	expectSameRows(t, q+" flaky", serial, recovered)
	expectSameBilling(t, q+" flaky", serial, recovered)
}

// TestStragglerSpeculation: workers slowed by injected latency trigger
// speculative duplicates; results and billing stay identical because only
// each task's winning attempt is accounted.
func TestStragglerSpeculation(t *testing.T) {
	e, dir := fixture(t)
	q := experimentQueries[0]
	serial := runSerial(t, e, q)
	clean := runDistributed(t, e, q, engine.DistOptions{Parts: 4, Invoker: processInvoker(dir)})

	proc := processInvoker(dir)
	proc.FaultFor = func(req *engine.WorkerRequest) *objstore.FaultConfig {
		if req.Attempt == 0 {
			return &objstore.FaultConfig{Seed: int64(req.Task), Latency: 15 * time.Millisecond}
		}
		return nil
	}
	res := runDistributed(t, e, q, engine.DistOptions{
		Parts: 4, Invoker: proc, SpeculativeAfter: 30 * time.Millisecond,
	})
	expectSameRows(t, q+" speculated", serial, res)
	expectSameBilling(t, q+" speculated", serial, res)
	if res.Stats != clean.Stats {
		t.Fatalf("speculated stats %+v vs clean %+v — a losing attempt was billed", res.Stats, clean.Stats)
	}
}

// TestTornIntermediateReadFailsLoudly: silent corruption of the shuffled
// intermediates (bit flips, correct length) must fail the query through the
// file checksums — wrong answers are worse than errors.
func TestTornIntermediateReadFailsLoudly(t *testing.T) {
	e, _ := fixture(t)
	torn := objstore.NewFaultStore(e.Store(), objstore.FaultConfig{
		TornFirst: 1,
		Ops:       []string{"GetRange"},
		Prefix:    objstore.IntermediateRoot,
	})
	te := engine.New(e.Catalog(), torn)

	stmt, err := sql.Parse(experimentQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	node, err := te.PlanQuery("tpch", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	_, err = te.RunPlanDistributed(context.Background(), node, "disttest-torn", engine.DistOptions{
		Parts: 4, Invoker: &engine.LocalInvoker{Engine: te},
	})
	if err == nil {
		t.Fatal("torn intermediate produced a result instead of an error")
	}
	if st := torn.Stats(); st.TornReads == 0 {
		t.Fatal("no torn read was injected — the test proved nothing")
	}
}
