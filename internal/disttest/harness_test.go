// Package disttest is the distributed correctness harness: it drives the
// paper's experiment queries (the A5/A6 shapes) through all three execution
// tiers — serial, in-process parallel, and multi-process with one worker
// process per task shuffling through the object store — and asserts the
// tiers are indistinguishable: bit-identical rows, identical billed
// bytes-scanned, identical scan statistics. A fault-injecting store wrapper
// then proves the multi-process tier recovers from worker failures and
// stragglers without changing any of that.
package disttest

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/sql"
	"repro/internal/workload"
)

func TestMain(m *testing.M) {
	// Re-executed test binaries become worker processes — multi-process
	// tests spawn workers without a separately built pixels-worker binary.
	if os.Getenv("PIXELS_WORKER_PROCESS") == "1" {
		os.Exit(engine.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	code := m.Run()
	if fixtureDir != "" {
		os.RemoveAll(fixtureDir)
	}
	os.Exit(code)
}

// experimentQueries are the A5/A6 experiment shapes: the partial-agg
// lineitem scan, the fact-dim join with coordinator-side merge, the bounded
// worker top-N, and a DISTINCT aggregate (scan pushdown). All numeric
// columns in the generated data hold integer-valued doubles, so partial
// aggregation is exact and every comparison below is bit-for-bit.
var experimentQueries = []string{
	"SELECT l_returnflag, COUNT(*), SUM(l_quantity), SUM(l_extendedprice) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
	"SELECT c_mktsegment, COUNT(*), SUM(o_totalprice) FROM orders, customer WHERE o_custkey = c_custkey GROUP BY c_mktsegment ORDER BY c_mktsegment",
	"SELECT l_orderkey, l_extendedprice FROM lineitem ORDER BY l_extendedprice DESC, l_orderkey LIMIT 10",
	"SELECT COUNT(DISTINCT l_returnflag), COUNT(*) FROM lineitem WHERE l_quantity > 25",
}

var (
	fixtureOnce sync.Once
	fixtureDir  string
	fixtureEng  *engine.Engine
	fixtureErr  error
)

// fixture loads TPC-H once into a disk store all tests (and their worker
// processes) share. Tests must not mutate the loaded tables.
func fixture(t *testing.T) (*engine.Engine, string) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureDir, fixtureErr = os.MkdirTemp("", "disttest-*")
		if fixtureErr != nil {
			return
		}
		var disk *objstore.Disk
		disk, fixtureErr = objstore.NewDisk(fixtureDir)
		if fixtureErr != nil {
			return
		}
		fixtureEng = engine.New(catalog.New(), disk)
		// SF 0.01 with small files: ~60k lineitem rows across enough files
		// to keep width-8 runs honest.
		fixtureErr = workload.Load(fixtureEng, "tpch", workload.LoadOptions{SF: 0.01, Seed: 7, RowsPerFile: 8192})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureEng, fixtureDir
}

func processInvoker(dir string) *engine.ProcessInvoker {
	return &engine.ProcessInvoker{
		Argv:     []string{os.Args[0]},
		Env:      []string{"PIXELS_WORKER_PROCESS=1"},
		StoreDir: dir,
	}
}

func runSerial(t *testing.T, e *engine.Engine, q string) *engine.Result {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("tpch", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlan(context.Background(), node)
	if err != nil {
		t.Fatalf("serial %q: %v", q, err)
	}
	return res
}

func runParallel(t *testing.T, e *engine.Engine, q string, width int) *engine.Result {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("tpch", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanParallel(context.Background(), node, width)
	if err != nil {
		t.Fatalf("parallel %q: %v", q, err)
	}
	return res
}

var distSeq int

func runDistributed(t *testing.T, e *engine.Engine, q string, opts engine.DistOptions) *engine.Result {
	t.Helper()
	distSeq++
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("tpch", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanDistributed(context.Background(), node, fmt.Sprintf("disttest-%d", distSeq), opts)
	if err != nil {
		t.Fatalf("distributed %q: %v", q, err)
	}
	return res
}

// expectSameRows asserts bit-identical result rows.
func expectSameRows(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for c := range want.Rows[i] {
			if !want.Rows[i][c].Equal(got.Rows[i][c]) {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, c, got.Rows[i][c], want.Rows[i][c])
			}
		}
	}
}

// expectSameBilling asserts the distributed run billed exactly the serial
// bytes and matched the serial scan statistics; the exchange itself must
// show up only as BytesIntermediate.
func expectSameBilling(t *testing.T, label string, serial, dist *engine.Result) {
	t.Helper()
	if dist.Stats.BytesScanned != serial.Stats.BytesScanned {
		t.Fatalf("%s billed bytes: %d vs serial %d", label, dist.Stats.BytesScanned, serial.Stats.BytesScanned)
	}
	if dist.Stats.RowsFiltered != serial.Stats.RowsFiltered ||
		dist.Stats.RowGroupsPruned != serial.Stats.RowGroupsPruned ||
		dist.Stats.RowsReturned != serial.Stats.RowsReturned {
		t.Fatalf("%s stats: %+v vs serial %+v", label, dist.Stats, serial.Stats)
	}
	if dist.Stats.BytesIntermediate <= 0 {
		t.Fatalf("%s: no intermediate bytes exchanged — did this run multi-process?", label)
	}
}

// TestExperimentQueriesAcrossTiers is the harness headline: for every
// experiment query and width, serial ≡ in-process parallel ≡ multi-process,
// in rows, billed bytes and stats; and the in-process wire leg
// (LocalInvoker) is bit-identical in full Stats to the subprocess leg.
func TestExperimentQueriesAcrossTiers(t *testing.T) {
	e, dir := fixture(t)
	proc := processInvoker(dir)
	for _, q := range experimentQueries {
		serial := runSerial(t, e, q)
		for _, width := range []int{1, 2, 8} {
			label := fmt.Sprintf("%s @%d", q, width)

			par := runParallel(t, e, q, width)
			expectSameRows(t, label+" parallel", serial, par)
			if par.Stats.BytesScanned != serial.Stats.BytesScanned {
				t.Fatalf("%s parallel billed %d vs serial %d", label, par.Stats.BytesScanned, serial.Stats.BytesScanned)
			}

			local := runDistributed(t, e, q, engine.DistOptions{Parts: width, Invoker: &engine.LocalInvoker{Engine: e}})
			expectSameRows(t, label+" local-invoker", serial, local)
			expectSameBilling(t, label+" local-invoker", serial, local)

			dist := runDistributed(t, e, q, engine.DistOptions{Parts: width, Invoker: proc})
			expectSameRows(t, label+" process", serial, dist)
			expectSameBilling(t, label+" process", serial, dist)
			if dist.Stats != local.Stats {
				t.Fatalf("%s: process stats %+v vs local stats %+v", label, dist.Stats, local.Stats)
			}
		}
	}
	infos, err := e.Store().List(objstore.IntermediateRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("intermediates left behind: %v", infos)
	}
}
