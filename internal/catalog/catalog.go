// Package catalog implements the metadata service that the paper's
// Coordinator consults ("managing metadata ... fetch database schema").
//
// The catalog tracks databases, tables, column schemas and the table
// layouts (which pixfile objects hold which rows). It can persist itself
// as JSON into the object store so a restarted server finds its tables.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/col"
	"repro/internal/objstore"
)

// Well-known errors. Callers match with errors.Is.
var (
	ErrNotFound = errors.New("catalog: not found")
	ErrExists   = errors.New("catalog: already exists")
)

// FileMeta locates one pixfile object of a table.
type FileMeta struct {
	Key  string `json:"key"`  // object-store key
	Size int64  `json:"size"` // bytes
	Rows int64  `json:"rows"`
}

// Table is a table's metadata: schema plus physical layout.
type Table struct {
	Name    string     `json:"name"`
	Columns []Column   `json:"columns"`
	Files   []FileMeta `json:"files"`
	Comment string     `json:"comment,omitempty"`
	// Generation increases monotonically (catalog-wide) on every change
	// to this table's data or existence: CREATE, DROP, AddFiles. Result
	// caches key on it, so staleness is impossible by construction — a
	// DROP+CREATE pair can never reuse an old table's generation.
	Generation uint64 `json:"generation,omitempty"`
}

// Column describes one column.
type Column struct {
	Name     string   `json:"name"`
	Type     col.Type `json:"type"`
	Nullable bool     `json:"nullable,omitempty"`
	Comment  string   `json:"comment,omitempty"`
}

// Schema converts the column list to the execution schema type.
func (t *Table) Schema() *col.Schema {
	fields := make([]col.Field, len(t.Columns))
	for i, c := range t.Columns {
		fields[i] = col.Field{Name: c.Name, Type: c.Type, Nullable: c.Nullable}
	}
	return col.NewSchema(fields...)
}

// RowCount sums rows across files.
func (t *Table) RowCount() int64 {
	var n int64
	for _, f := range t.Files {
		n += f.Rows
	}
	return n
}

// TotalBytes sums bytes across files.
func (t *Table) TotalBytes() int64 {
	var n int64
	for _, f := range t.Files {
		n += f.Size
	}
	return n
}

// Database is a named collection of tables.
type Database struct {
	Name   string            `json:"name"`
	Tables map[string]*Table `json:"tables"`
}

// Catalog is the in-memory metadata store. All methods are safe for
// concurrent use. Names are case-insensitive and stored lower-cased,
// matching common SQL engines.
type Catalog struct {
	mu  sync.RWMutex
	dbs map[string]*Database
	gen uint64 // catalog-wide generation counter; see Table.Generation
}

// nextGen allocates the next generation. Caller holds c.mu.
func (c *Catalog) nextGen() uint64 {
	c.gen++
	return c.gen
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{dbs: make(map[string]*Database)}
}

func norm(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// CreateDatabase adds a database.
func (c *Catalog) CreateDatabase(name string) error {
	n := norm(name)
	if n == "" {
		return fmt.Errorf("catalog: empty database name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.dbs[n]; ok {
		return fmt.Errorf("%w: database %s", ErrExists, n)
	}
	c.dbs[n] = &Database{Name: n, Tables: make(map[string]*Table)}
	return nil
}

// DropDatabase removes a database and its tables.
func (c *Catalog) DropDatabase(name string) error {
	n := norm(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.dbs[n]; !ok {
		return fmt.Errorf("%w: database %s", ErrNotFound, n)
	}
	delete(c.dbs, n)
	return nil
}

// ListDatabases returns database names, sorted.
func (c *Catalog) ListDatabases() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasDatabase reports whether the database exists.
func (c *Catalog) HasDatabase(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.dbs[norm(name)]
	return ok
}

// CreateTable adds a table to a database.
func (c *Catalog) CreateTable(db string, t *Table) error {
	dn, tn := norm(db), norm(t.Name)
	if tn == "" {
		return fmt.Errorf("catalog: empty table name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", tn)
	}
	seen := make(map[string]bool)
	for i := range t.Columns {
		cn := norm(t.Columns[i].Name)
		if cn == "" {
			return fmt.Errorf("catalog: table %s has an unnamed column", tn)
		}
		if seen[cn] {
			return fmt.Errorf("catalog: table %s has duplicate column %s", tn, cn)
		}
		seen[cn] = true
		t.Columns[i].Name = cn
		if t.Columns[i].Type == col.UNKNOWN {
			return fmt.Errorf("catalog: column %s.%s has unknown type", tn, cn)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dbs[dn]
	if !ok {
		return fmt.Errorf("%w: database %s", ErrNotFound, dn)
	}
	if _, ok := d.Tables[tn]; ok {
		return fmt.Errorf("%w: table %s.%s", ErrExists, dn, tn)
	}
	cp := *t
	cp.Name = tn
	cp.Generation = c.nextGen()
	d.Tables[tn] = &cp
	return nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(db, table string) error {
	dn, tn := norm(db), norm(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dbs[dn]
	if !ok {
		return fmt.Errorf("%w: database %s", ErrNotFound, dn)
	}
	if _, ok := d.Tables[tn]; !ok {
		return fmt.Errorf("%w: table %s.%s", ErrNotFound, dn, tn)
	}
	delete(d.Tables, tn)
	// Advance the counter so a later CREATE of the same name cannot
	// collide with cache keys recorded against the dropped table.
	c.nextGen()
	return nil
}

// GetTable returns a copy of the table metadata. Mutating the copy does not
// affect the catalog; use AddFiles to change layout.
func (c *Catalog) GetTable(db, table string) (*Table, error) {
	dn, tn := norm(db), norm(table)
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.dbs[dn]
	if !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNotFound, dn)
	}
	t, ok := d.Tables[tn]
	if !ok {
		return nil, fmt.Errorf("%w: table %s.%s", ErrNotFound, dn, tn)
	}
	cp := *t
	cp.Columns = append([]Column(nil), t.Columns...)
	cp.Files = append([]FileMeta(nil), t.Files...)
	return &cp, nil
}

// ListTables returns table names in a database, sorted.
func (c *Catalog) ListTables(db string) ([]string, error) {
	dn := norm(db)
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.dbs[dn]
	if !ok {
		return nil, fmt.Errorf("%w: database %s", ErrNotFound, dn)
	}
	names := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// AddFiles appends file metadata to a table's layout.
func (c *Catalog) AddFiles(db, table string, files ...FileMeta) error {
	dn, tn := norm(db), norm(table)
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dbs[dn]
	if !ok {
		return fmt.Errorf("%w: database %s", ErrNotFound, dn)
	}
	t, ok := d.Tables[tn]
	if !ok {
		return fmt.Errorf("%w: table %s.%s", ErrNotFound, dn, tn)
	}
	t.Files = append(t.Files, files...)
	t.Generation = c.nextGen()
	return nil
}

// Generation returns the current generation of a table, or false if the
// table does not exist. Result caches recheck plan-time generations with
// this before serving a cached plan or result.
func (c *Catalog) Generation(db, table string) (uint64, bool) {
	dn, tn := norm(db), norm(table)
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.dbs[dn]
	if !ok {
		return 0, false
	}
	t, ok := d.Tables[tn]
	if !ok {
		return 0, false
	}
	return t.Generation, true
}

// snapshot is the JSON persistence layout.
type snapshot struct {
	Version   int         `json:"version"`
	Gen       uint64      `json:"gen,omitempty"` // generation counter high-water mark
	Databases []*Database `json:"databases"`
}

// MetaKey is the object-store key the catalog persists itself under.
const MetaKey = "_catalog/meta.json"

// Save persists the catalog to the object store.
func (c *Catalog) Save(store objstore.Store) error {
	c.mu.RLock()
	snap := snapshot{Version: 1, Gen: c.gen}
	names := make([]string, 0, len(c.dbs))
	for n := range c.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		snap.Databases = append(snap.Databases, c.dbs[n])
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	c.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("catalog: marshal: %w", err)
	}
	return store.Put(MetaKey, data)
}

// Load replaces the catalog contents from the object store. A missing
// snapshot loads an empty catalog.
func (c *Catalog) Load(store objstore.Store) error {
	data, err := store.Get(MetaKey)
	if errors.Is(err, objstore.ErrNotFound) {
		c.mu.Lock()
		c.dbs = make(map[string]*Database)
		c.mu.Unlock()
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("catalog: unmarshal: %w", err)
	}
	dbs := make(map[string]*Database, len(snap.Databases))
	gen := snap.Gen
	for _, d := range snap.Databases {
		if d.Tables == nil {
			d.Tables = make(map[string]*Table)
		}
		// Snapshots written before the counter existed: restore it to the
		// max table generation so new allocations stay monotonic.
		for _, t := range d.Tables {
			if t.Generation > gen {
				gen = t.Generation
			}
		}
		dbs[d.Name] = d
	}
	c.mu.Lock()
	c.dbs = dbs
	c.gen = gen
	c.mu.Unlock()
	return nil
}
