package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/col"
	"repro/internal/objstore"
)

func demoTable() *Table {
	return &Table{
		Name: "Orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: col.INT64},
			{Name: "o_totalprice", Type: col.FLOAT64},
			{Name: "o_orderdate", Type: col.DATE},
		},
	}
}

func TestDatabaseLifecycle(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("TPCH"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDatabase("tpch"); !errors.Is(err, ErrExists) {
		t.Fatalf("case-insensitive duplicate accepted: %v", err)
	}
	if !c.HasDatabase("TpCh") {
		t.Fatalf("HasDatabase case-insensitivity broken")
	}
	if got := c.ListDatabases(); len(got) != 1 || got[0] != "tpch" {
		t.Fatalf("ListDatabases = %v", got)
	}
	if err := c.DropDatabase("tpch"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDatabase("tpch"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	if err := c.CreateDatabase(""); err == nil {
		t.Fatalf("empty name accepted")
	}
}

func TestTableLifecycle(t *testing.T) {
	c := New()
	if err := c.CreateTable("nodb", demoTable()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("create in missing db: %v", err)
	}
	if err := c.CreateDatabase("tpch"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("tpch", demoTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("tpch", demoTable()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	got, err := c.GetTable("TPCH", "ORDERS")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "orders" || len(got.Columns) != 3 || got.Columns[0].Name != "o_orderkey" {
		t.Fatalf("GetTable = %+v", got)
	}
	names, err := c.ListTables("tpch")
	if err != nil || len(names) != 1 || names[0] != "orders" {
		t.Fatalf("ListTables = %v, %v", names, err)
	}
	if err := c.DropTable("tpch", "orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetTable("tpch", "orders"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped table still visible: %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	cases := []*Table{
		{Name: "t"}, // no columns
		{Name: "", Columns: []Column{{Name: "a", Type: col.INT64}}},                                // no name
		{Name: "t", Columns: []Column{{Name: "", Type: col.INT64}}},                                // unnamed col
		{Name: "t", Columns: []Column{{Name: "a", Type: col.INT64}, {Name: "A", Type: col.INT64}}}, // dup col
		{Name: "t", Columns: []Column{{Name: "a"}}},                                                // unknown type
	}
	for i, tb := range cases {
		if err := c.CreateTable("d", tb); err == nil {
			t.Errorf("case %d accepted: %+v", i, tb)
		}
	}
}

func TestGetTableReturnsCopy(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("d", demoTable()); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GetTable("d", "orders")
	got.Columns[0].Name = "mutated"
	got.Files = append(got.Files, FileMeta{Key: "x"})
	again, _ := c.GetTable("d", "orders")
	if again.Columns[0].Name != "o_orderkey" || len(again.Files) != 0 {
		t.Fatalf("catalog mutated through copy: %+v", again)
	}
}

func TestAddFilesAndStats(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("d", demoTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFiles("d", "orders",
		FileMeta{Key: "d/orders/0.pxl", Size: 1000, Rows: 10},
		FileMeta{Key: "d/orders/1.pxl", Size: 2000, Rows: 20},
	); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GetTable("d", "orders")
	if got.RowCount() != 30 || got.TotalBytes() != 3000 || len(got.Files) != 2 {
		t.Fatalf("stats wrong: rows=%d bytes=%d files=%d", got.RowCount(), got.TotalBytes(), len(got.Files))
	}
	if err := c.AddFiles("d", "nope", FileMeta{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("AddFiles to missing table: %v", err)
	}
}

func TestSchemaConversion(t *testing.T) {
	tb := demoTable()
	s := tb.Schema()
	if s.Len() != 3 || s.Fields[2].Type != col.DATE {
		t.Fatalf("Schema() = %v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	store := objstore.NewMemory()
	c := New()
	if err := c.CreateDatabase("tpch"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("tpch", demoTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFiles("tpch", "orders", FileMeta{Key: "k", Size: 5, Rows: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(store); err != nil {
		t.Fatal(err)
	}

	c2 := New()
	if err := c2.Load(store); err != nil {
		t.Fatal(err)
	}
	got, err := c2.GetTable("tpch", "orders")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount() != 1 || got.Columns[1].Type != col.FLOAT64 {
		t.Fatalf("loaded table wrong: %+v", got)
	}
}

func TestLoadMissingSnapshotIsEmpty(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(objstore.NewMemory()); err != nil {
		t.Fatal(err)
	}
	if len(c.ListDatabases()) != 0 {
		t.Fatalf("Load of empty store should clear catalog")
	}
}

func TestLoadRejectsCorruptSnapshot(t *testing.T) {
	store := objstore.NewMemory()
	if err := store.Put(MetaKey, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if err := New().Load(store); err == nil {
		t.Fatalf("corrupt snapshot accepted")
	}
}

func TestConcurrentCatalogUse(t *testing.T) {
	c := New()
	if err := c.CreateDatabase("d"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tb := &Table{
				Name:    fmt.Sprintf("t%d", i),
				Columns: []Column{{Name: "a", Type: col.INT64}},
			}
			if err := c.CreateTable("d", tb); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if err := c.AddFiles("d", tb.Name, FileMeta{Key: fmt.Sprintf("f%d", j), Rows: 1}); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.GetTable("d", tb.Name); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	names, err := c.ListTables("d")
	if err != nil || len(names) != 8 {
		t.Fatalf("tables after concurrency: %v %v", names, err)
	}
}
