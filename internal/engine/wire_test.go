package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/sql"
)

// wireQueries exercises every node kind and bound-expression kind the wire
// format carries: filters with zone-pruning conjuncts, arithmetic, unary
// minus, IS [NOT] NULL, [NOT] IN lists, scalar functions, CASE, CAST,
// aggregation with DISTINCT and AVG, top-N with hidden sort keys, plain
// sorts, and LIMIT/OFFSET.
var wireQueries = []string{
	"SELECT f_key, f_val FROM fact",
	"SELECT f_key + 1, -f_val, f_val * 2.5 FROM fact WHERE f_val > 10 AND f_key < 500",
	"SELECT f_cat, COUNT(*), SUM(f_val), MIN(f_val), MAX(f_val), AVG(f_val) FROM fact WHERE f_dim IN (1, 2, 3) GROUP BY f_cat",
	"SELECT COUNT(DISTINCT f_cat) FROM fact WHERE f_cat NOT IN ('x')",
	"SELECT CASE WHEN f_val > 500 THEN 'hi' WHEN f_val > 100 THEN 'mid' ELSE 'lo' END, UPPER(f_cat) FROM fact WHERE f_cat IS NOT NULL",
	"SELECT CAST(f_val AS BIGINT), LENGTH(f_cat) FROM fact WHERE f_key IS NULL",
	"SELECT f_key FROM fact ORDER BY f_val DESC, f_key LIMIT 5 OFFSET 2",
	"SELECT f_key, f_val FROM fact ORDER BY f_cat",
	"SELECT f_key FROM fact LIMIT 7",
}

// TestWireRoundTrip: encode → JSON → decode must preserve the plan
// (identical EXPLAIN), and re-encoding the decoded plan must reproduce the
// identical wire JSON — a fixpoint, so no field silently drops out on
// either half of the trip.
func TestWireRoundTrip(t *testing.T) {
	e := newPartitionedEngine(t, 2, 100)
	for _, q := range wireQueries {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		node, err := e.PlanQuery("db", stmt.(*sql.Select))
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		w, err := encodeNode(node)
		if err != nil {
			t.Fatalf("encode %q: %v", q, err)
		}
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("marshal %q: %v", q, err)
		}
		var w2 wireNode
		if err := json.Unmarshal(data, &w2); err != nil {
			t.Fatalf("unmarshal %q: %v", q, err)
		}
		decoded, err := decodeNode(&w2)
		if err != nil {
			t.Fatalf("decode %q: %v", q, err)
		}
		if got, want := plan.Explain(decoded), plan.Explain(node); got != want {
			t.Fatalf("%q explain drifted through the wire:\nwant:\n%s\ngot:\n%s", q, want, got)
		}
		w3, err := encodeNode(decoded)
		if err != nil {
			t.Fatalf("re-encode %q: %v", q, err)
		}
		data2, err := json.Marshal(w3)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("%q wire JSON is not a fixpoint:\nfirst:  %s\nsecond: %s", q, data, data2)
		}
	}
}

// TestWireRoundTripPreservesScanDetails pins the scan fields EXPLAIN may
// summarize: projected ordinals, zone-pruning conjuncts, and the rebuilt
// self-contained table schema.
func TestWireRoundTripPreservesScanDetails(t *testing.T) {
	e := newPartitionedEngine(t, 2, 100)
	stmt, _ := sql.Parse("SELECT f_val FROM fact WHERE f_key >= 100 AND f_key < 110 AND f_val > 3")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	orig := plan.Scans(node)[0]
	if len(orig.ZonePreds) == 0 {
		t.Fatal("fixture query planned without zone predicates; test is vacuous")
	}

	w, err := encodeNode(node)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := decodeNode(w)
	if err != nil {
		t.Fatal(err)
	}
	got := plan.Scans(decoded)[0]
	if len(got.Cols) != len(orig.Cols) {
		t.Fatalf("Cols: got %v want %v", got.Cols, orig.Cols)
	}
	for i := range orig.Cols {
		if got.Cols[i] != orig.Cols[i] {
			t.Fatalf("Cols: got %v want %v", got.Cols, orig.Cols)
		}
	}
	if len(got.ZonePreds) != len(orig.ZonePreds) {
		t.Fatalf("ZonePreds: got %d want %d", len(got.ZonePreds), len(orig.ZonePreds))
	}
	for i, p := range orig.ZonePreds {
		g := got.ZonePreds[i]
		if g.Col != p.Col || g.Op != p.Op || !g.Val.Equal(p.Val) {
			t.Fatalf("ZonePreds[%d]: got %+v want %+v", i, g, p)
		}
	}
	if got.Table == nil || len(got.Table.Columns) != len(orig.Table.Columns) {
		t.Fatalf("decoded scan table: %+v", got.Table)
	}
	for i, c := range orig.Table.Columns {
		if got.Table.Columns[i] != c {
			t.Fatalf("table column %d: got %+v want %+v", i, got.Table.Columns[i], c)
		}
	}
	if !got.Schema().Equal(orig.Schema()) {
		t.Fatalf("schema: got %v want %v", got.Schema(), orig.Schema())
	}
}

// TestWireRejectsJoins: join fragments must not cross the worker process
// boundary — the coordinator keeps joins on the merge side, and the wire
// layer enforces it rather than silently shipping half a join.
func TestWireRejectsJoins(t *testing.T) {
	e := newPartitionedEngine(t, 2, 100)
	stmt, _ := sql.Parse("SELECT d_name, SUM(f_val) FROM fact, dim WHERE f_dim = d_key GROUP BY d_name")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encodeNode(node); err == nil {
		t.Fatal("encoding a join plan succeeded")
	} else if !strings.Contains(err.Error(), "join") {
		t.Fatalf("join rejection error: %v", err)
	}
}

// TestWireDecodeRejectsMalformed: hostile or corrupted requests must fail
// decode validation, not crash the worker process.
func TestWireDecodeRejectsMalformed(t *testing.T) {
	for name, raw := range map[string]string{
		"unknown kind":       `{"kind":"exchange"}`,
		"scan ordinal range": `{"kind":"scan","table":"t","cols":[3],"columns":[{"name":"a","type":1}]}`,
		"project arity":      `{"kind":"project","names":["a","b"],"exprs":[{"kind":"col","idx":0,"ty":1}],"child":{"kind":"scan","table":"t","cols":[0],"columns":[{"name":"a","type":1}]}}`,
		"missing child":      `{"kind":"limit","limit":1}`,
		"unknown expr":       `{"kind":"filter","cond":{"kind":"window"},"child":{"kind":"scan","table":"t","cols":[0],"columns":[{"name":"a","type":1}]}}`,
	} {
		var w wireNode
		if err := json.Unmarshal([]byte(raw), &w); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := decodeNode(&w); err == nil {
			t.Fatalf("%s: decoded successfully", name)
		}
	}
}
