package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/pixfile"
	"repro/internal/plan"
)

// WorkerRequest is the complete job description one CF worker receives: the
// serialized fragment, the file partition to run it over, and the object key
// to write the intermediate to. It is self-contained — a worker process
// reconstructs everything it needs (store, fragment, fault plan) from the
// request alone, with no catalog and no shared memory.
type WorkerRequest struct {
	QueryID string `json:"query_id"`
	Task    int    `json:"task"`
	// Attempt distinguishes retries and speculative duplicates of the same
	// task. Each attempt writes to its own OutKey, so a retry can never read
	// or be confused with a failed attempt's partial output.
	Attempt int                `json:"attempt"`
	Plan    *wireNode          `json:"plan"`
	Files   []catalog.FileMeta `json:"files"`
	OutKey  string             `json:"out_key"`

	// StoreDir is the disk-store root a worker process opens. Ignored by
	// in-process invokers, which share the coordinator's store directly.
	StoreDir string `json:"store_dir,omitempty"`
	// Fault, when set, wraps the worker's store in a FaultStore — the
	// harness ships the fault plan to the worker so injected store errors
	// happen inside the worker process, where recovery must work.
	Fault *objstore.FaultConfig `json:"fault,omitempty"`
	// Interpreted disables the vectorized kernels, mirroring the
	// coordinator engine's setting so both sides evaluate identically.
	Interpreted bool `json:"interpreted,omitempty"`
	// Trace asks the worker to record per-operator spans for its fragment
	// and ship them back in WorkerResponse.Spans. Execution, stats and
	// billed bytes are identical either way.
	Trace bool `json:"trace,omitempty"`
}

// WorkerResponse is what a worker reports back: the intermediate it wrote
// and the scan statistics it accumulated, or an error. A response carrying
// an error always carries zero Stats — a failed attempt must contribute
// nothing to the query's billed bytes, or retries would double-bill.
type WorkerResponse struct {
	Interm catalog.FileMeta `json:"interm"`
	Stats  Stats            `json:"stats"`
	Error  string           `json:"error,omitempty"`
	// Spans is the fragment's span tree when the request set Trace. The
	// coordinator grafts it under the winning attempt's span, so under
	// speculation only the winner's spans appear in the query trace.
	Spans *obs.SpanData `json:"spans,omitempty"`
}

// NewWorkerRequest serializes one task of a split into a self-contained
// request for the given attempt.
func NewWorkerRequest(split *CFSplit, task, attempt int) (*WorkerRequest, error) {
	if task < 0 || task >= len(split.Tasks) {
		return nil, fmt.Errorf("engine: task %d out of range %d", task, len(split.Tasks))
	}
	if split.buildJoin != nil {
		// Same restriction as RunWorker: a worker process would have to
		// rebuild the join's build side per task, inflating billed bytes.
		return nil, fmt.Errorf("engine: shared-build join split cannot run as a CF worker")
	}
	wp, err := encodeNode(split.workerPlan)
	if err != nil {
		return nil, err
	}
	return &WorkerRequest{
		QueryID: split.QueryID,
		Task:    task,
		Attempt: attempt,
		Plan:    wp,
		Files:   split.Tasks[task].Files,
		OutKey:  intermAttemptKey(split.QueryID, task, attempt),
	}, nil
}

// intermAttemptKey is the object key one attempt of one task writes. Every
// attempt gets its own key under the query's intermediate prefix; the
// coordinator records the winner's key and deletes the whole prefix after
// the merge, which also sweeps orphans left by failed or duplicated
// attempts.
func intermAttemptKey(queryID string, part, attempt int) string {
	return fmt.Sprintf("%spart-%05d.a%d.pxl", objstore.IntermediatePrefix(queryID), part, attempt)
}

// decodeWorkerPlan rebuilds a fragment and locates its partitioned scan. A
// CF-safe fragment contains exactly one scan (RunWorker rejects the only
// split shape with two).
func decodeWorkerPlan(w *wireNode) (plan.Node, *plan.ScanNode, error) {
	node, err := decodeNode(w)
	if err != nil {
		return nil, nil, err
	}
	scans := plan.Scans(node)
	if len(scans) != 1 {
		return nil, nil, fmt.Errorf("engine: worker fragment has %d scans, want 1", len(scans))
	}
	return node, scans[0], nil
}

// executeFragment runs a fragment over a file partition and writes the
// result as a pixfile at outKey. Batches stream straight into the file
// writer (exec.Each), so worker memory stays bounded by a row group. On any
// error the returned Stats are zero: a failed attempt is retried, and its
// bytes must not count toward the query or billed bytes would depend on how
// far the failure got.
func (e *Engine) executeFragment(ctx context.Context, node plan.Node, scan *plan.ScanNode, files []catalog.FileMeta, outKey string) (catalog.FileMeta, Stats, error) {
	// Scope the fragment's scan pipelines to this call.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stats := &Stats{}
	overrides := map[*plan.ScanNode]scanOverride{
		scan: {files: files},
	}
	op, err := exec.BuildWith(node, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, overrides, pipelineEligible(node)),
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, overrides, pipelineEligible(node)),
		Span:         obs.SpanFrom(ctx),
	})
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	w := pixfile.NewWriter(node.Schema(), pixfile.WriterOptions{})
	var rows int64
	err = exec.Each(op, func(b *col.Batch) error {
		rows += int64(b.N)
		return w.Append(b)
	})
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	data, err := w.Finish()
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	if err := e.store.Put(outKey, data); err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	return catalog.FileMeta{Key: outKey, Size: int64(len(data)), Rows: rows}, *stats, nil
}

// ExecuteWorkerRequest decodes and runs a worker request against this
// engine's store. It is the single execution path shared by the worker
// process (WorkerMain) and the in-process LocalInvoker, so both exercise
// the same serialization round trip.
func (e *Engine) ExecuteWorkerRequest(ctx context.Context, req *WorkerRequest) *WorkerResponse {
	// A traced request records the fragment under a worker-local trace;
	// its snapshot ships back in the response and the coordinator grafts
	// it under the winning attempt's span.
	var wtr *obs.Trace
	if req.Trace {
		wtr = obs.NewTrace(req.QueryID, fmt.Sprintf("fragment:t%d.a%d", req.Task, req.Attempt))
		ctx = obs.ContextWithTrace(ctx, wtr)
	}
	node, scan, err := decodeWorkerPlan(req.Plan)
	if err != nil {
		return &WorkerResponse{Error: err.Error()}
	}
	meta, stats, err := e.executeFragment(ctx, node, scan, req.Files, req.OutKey)
	if err != nil {
		return &WorkerResponse{Error: err.Error()}
	}
	resp := &WorkerResponse{Interm: meta, Stats: stats}
	if wtr != nil {
		root := wtr.Root()
		root.SetAttr("out_rows", meta.Rows)
		root.SetAttr("out_bytes", meta.Size)
		root.End()
		resp.Spans = wtr.Data()
	}
	return resp
}

// WorkerMain is the entry point of a CF worker process: it reads one JSON
// WorkerRequest from stdin, executes it against the request's disk store,
// writes one JSON WorkerResponse to stdout and returns the process exit
// code. cmd/pixels-worker calls it from main; test binaries call it from
// TestMain when re-executed as workers, so multi-process tests need no
// separately built binary.
func WorkerMain(stdin io.Reader, stdout, stderr io.Writer) int {
	// A killed coordinator must not leave orphan workers: exit on the
	// signals process groups receive at teardown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fail := func(err error) int {
		// Protocol errors still produce a well-formed response when
		// possible; the exit code tells the invoker regardless.
		_ = json.NewEncoder(stdout).Encode(&WorkerResponse{Error: err.Error()})
		fmt.Fprintln(stderr, "pixels-worker:", err)
		return 1
	}

	var req WorkerRequest
	if err := json.NewDecoder(stdin).Decode(&req); err != nil {
		return fail(fmt.Errorf("decode request: %w", err))
	}
	if req.StoreDir == "" {
		return fail(fmt.Errorf("request has no store_dir"))
	}
	var store objstore.Store
	disk, err := objstore.NewDisk(req.StoreDir)
	if err != nil {
		return fail(err)
	}
	store = disk
	if req.Fault != nil {
		store = objstore.NewFaultStore(store, *req.Fault)
	}

	e := New(catalog.New(), store)
	e.SetVectorized(!req.Interpreted)
	resp := e.ExecuteWorkerRequest(ctx, &req)
	if err := json.NewEncoder(stdout).Encode(resp); err != nil {
		fmt.Fprintln(stderr, "pixels-worker:", err)
		return 1
	}
	if resp.Error != "" {
		return 1
	}
	return 0
}
