package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sql"
)

func runParallelWidth(t *testing.T, e *Engine, q string, width int) (*Result, error) {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return e.RunPlanParallel(context.Background(), node, width)
}

// TestParallelBudgetBounds: with a budget of 1 token, concurrent parallel
// queries may never hold more than one extra-worker token at once no matter
// how wide they asked to run (the first worker of each query is exempt, so
// every query still makes progress).
func TestParallelBudgetBounds(t *testing.T) {
	e := newBudgetEngine(t)
	SetParallelBudget(1)
	defer SetParallelBudget(0)
	ResetParallelBudgetStats()

	const q = "SELECT COUNT(*), SUM(b_val), MIN(b_s) FROM big WHERE b_key % 2 = 0"
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = runParallelWidth(t, e, q, 8)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if hw := ParallelBudgetHighWater(); hw > 1 {
		t.Errorf("budget 1 but %d extra workers ran concurrently", hw)
	}
}

// TestParallelBudgetUnlimited: a negative budget removes the bound and wide
// execution still completes.
func TestParallelBudgetUnlimited(t *testing.T) {
	e := newBudgetEngine(t)
	SetParallelBudget(-1)
	defer SetParallelBudget(0)

	res, err := runParallelWidth(t, e, "SELECT COUNT(*) FROM big", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4*4096 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
}

// TestParallelBudgetResultsUnchanged: the budget only narrows the worker
// width — rows and billed bytes are identical whether a query got its full
// width, one token, or none.
func TestParallelBudgetResultsUnchanged(t *testing.T) {
	e := newBudgetEngine(t)
	const q = "SELECT COUNT(*), SUM(b_val), MAX(b_s) FROM big WHERE b_key % 3 = 0"

	SetParallelBudget(-1)
	base, err := runParallelWidth(t, e, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelBudget(1)
	defer SetParallelBudget(0)
	narrow, err := runParallelWidth(t, e, q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rowsAsStrings(base)) != fmt.Sprint(rowsAsStrings(narrow)) {
		t.Fatalf("rows differ: %v vs %v", rowsAsStrings(base), rowsAsStrings(narrow))
	}
	if base.Stats.BytesScanned != narrow.Stats.BytesScanned {
		t.Fatalf("billed bytes differ: %d vs %d", base.Stats.BytesScanned, narrow.Stats.BytesScanned)
	}
}
