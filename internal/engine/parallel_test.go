package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

// newPartitionedEngine loads a fact table split across `files` pixfiles plus
// a one-file dim table. f_val holds integer-valued floats so SUM/AVG are
// exact in any accumulation order and serial vs parallel results can be
// compared bit-for-bit.
func newPartitionedEngine(tb testing.TB, files, rowsPerFile int) *Engine {
	tb.Helper()
	return newPartitionedEngineOn(tb, objstore.NewMemory(), files, rowsPerFile)
}

// newPartitionedEngineOn is newPartitionedEngine over a caller-supplied
// store (the cache integration tests and benchmarks layer caching and
// metering under the engine).
func newPartitionedEngineOn(tb testing.TB, store objstore.Store, files, rowsPerFile int) *Engine {
	tb.Helper()
	e := New(catalog.New(), store)
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE dim (d_key BIGINT NOT NULL, d_name VARCHAR NOT NULL)",
		"CREATE TABLE fact (f_key BIGINT NOT NULL, f_dim BIGINT NOT NULL, f_val DOUBLE NOT NULL, f_cat VARCHAR NOT NULL)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			tb.Fatal(err)
		}
	}
	for d := 0; d < 16; d++ {
		if _, err := e.Execute(ctx, "db", fmt.Sprintf("INSERT INTO dim VALUES (%d, 'dim-%02d')", d, d)); err != nil {
			tb.Fatal(err)
		}
	}
	cats := []string{"x", "y", "z", "w"}
	for f := 0; f < files; f++ {
		k := col.NewVector(col.INT64, rowsPerFile)
		dm := col.NewVector(col.INT64, rowsPerFile)
		v := col.NewVector(col.FLOAT64, rowsPerFile)
		c := col.NewVector(col.STRING, rowsPerFile)
		for r := 0; r < rowsPerFile; r++ {
			i := f*rowsPerFile + r
			k.Ints[r] = int64(i)
			dm.Ints[r] = int64(i % 16)
			v.Floats[r] = float64(i % 1000)
			c.Strs[r] = cats[i%4]
		}
		if err := e.LoadBatch("db", "fact", col.NewBatch(k, dm, v, c), pixfile.WriterOptions{RowGroupSize: 1024}); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

// parallelQueries covers both split modes: partial aggregation (single-scan
// aggregates, incl. AVG reconstruction) and scan pushdown (joins, DISTINCT
// aggregates, plain scans).
var parallelQueries = []string{
	"SELECT COUNT(*), SUM(f_val), MIN(f_val), MAX(f_val), AVG(f_val) FROM fact",
	"SELECT f_cat, COUNT(*), SUM(f_val), AVG(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat",
	"SELECT f_cat, COUNT(*) FROM fact WHERE f_val > 500 GROUP BY f_cat ORDER BY f_cat",
	"SELECT f_key, f_val FROM fact WHERE f_key >= 100 AND f_key < 110 ORDER BY f_key",
	"SELECT COUNT(DISTINCT f_cat), COUNT(DISTINCT f_dim) FROM fact",
	"SELECT d_name, COUNT(*), SUM(f_val) FROM fact, dim WHERE f_dim = d_key GROUP BY d_name ORDER BY d_name",
	"SELECT f_key FROM fact ORDER BY f_val DESC, f_key LIMIT 5",
}

func runBoth(t *testing.T, e *Engine, q string, parallelism int) (*Result, *Result) {
	t.Helper()
	ctx := context.Background()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	sNode, err := e.PlanQuery("db", sel)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.RunPlan(ctx, sNode)
	if err != nil {
		t.Fatalf("serial %q: %v", q, err)
	}
	pNode, err := e.PlanQuery("db", sel)
	if err != nil {
		t.Fatal(err)
	}
	par, err := e.RunPlanParallel(ctx, pNode, parallelism)
	if err != nil {
		t.Fatalf("parallel %q: %v", q, err)
	}
	return serial, par
}

func expectIdentical(t *testing.T, q string, serial, par *Result) {
	t.Helper()
	if len(par.Rows) != len(serial.Rows) {
		t.Fatalf("%q: %d rows parallel vs %d serial", q, len(par.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		for c := range serial.Rows[i] {
			if !serial.Rows[i][c].Equal(par.Rows[i][c]) {
				t.Fatalf("%q row %d col %d: parallel %v vs serial %v", q, i, c, par.Rows[i][c], serial.Rows[i][c])
			}
		}
	}
	if par.Stats != serial.Stats {
		t.Fatalf("%q stats: parallel %+v vs serial %+v", q, par.Stats, serial.Stats)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	e := newPartitionedEngine(t, 8, 2000)
	// Widths below, equal to, and above the file count (uneven partitions
	// included).
	for _, width := range []int{2, 3, 8, 13} {
		for _, q := range parallelQueries {
			serial, par := runBoth(t, e, q, width)
			expectIdentical(t, fmt.Sprintf("%s @%d", q, width), serial, par)
		}
	}
}

// mergeSideQueries exercise the splits that parallelize work downstream of
// the scan: shared-build joins (cross, LEFT with an ON residual, inner
// with and without aggregation) and worker top-N for ORDER BY + LIMIT,
// both over a single scan and over a join. Sort keys are total orders so
// serial and parallel results compare row for row.
var mergeSideQueries = []string{
	"SELECT COUNT(*), SUM(f_val + d_key) FROM fact, dim",
	"SELECT f_key, d_name FROM fact LEFT JOIN dim ON f_dim = d_key AND d_name <> 'dim-03' WHERE f_key < 64 ORDER BY f_key, d_name",
	"SELECT f_key, f_val, d_name FROM fact JOIN dim ON f_dim = d_key WHERE f_val > 900 ORDER BY f_val DESC, f_key LIMIT 7",
	"SELECT f_key, f_val FROM fact WHERE f_val > 100 ORDER BY f_val DESC, f_key LIMIT 10 OFFSET 3",
	"SELECT f_key FROM fact LEFT JOIN dim ON f_dim = d_key AND d_key < 8 ORDER BY f_key LIMIT 9",
	// MaxInt64 LIMIT with an OFFSET would overflow the per-worker top-N
	// bound; the splitter must fall back rather than wrap negative.
	"SELECT f_key FROM fact WHERE f_key < 30 ORDER BY f_key LIMIT 9223372036854775807 OFFSET 2",
	// Heavy ties at the top-N cutoff: contiguous partitions must resolve
	// them to the same rows the serial stable sort keeps.
	"SELECT f_key FROM fact ORDER BY f_cat LIMIT 5",
	// No ORDER BY: group first-appearance order must match serial too.
	"SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat",
	"SELECT f_key, d_name FROM fact, dim WHERE f_dim = d_key AND f_key < 40 ORDER BY f_key",
	"SELECT d_name, COUNT(*) FROM fact JOIN dim ON f_dim = d_key WHERE f_val > 500 GROUP BY d_name ORDER BY d_name",
}

// TestParallelMergeSideMatchesSerial asserts result, stats and billing
// equality between the serial path and the merge-side parallel splits at
// widths below, at, and above the partition count.
func TestParallelMergeSideMatchesSerial(t *testing.T) {
	e := newPartitionedEngine(t, 8, 2000)
	for _, width := range []int{1, 2, 8} {
		for _, q := range mergeSideQueries {
			serial, par := runBoth(t, e, q, width)
			expectIdentical(t, fmt.Sprintf("%s @%d", q, width), serial, par)
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	e := newPartitionedEngine(t, 6, 1500)
	ctx := context.Background()
	// No ORDER BY: output order comes from group first-appearance, which
	// the partition-ordered merge must keep stable across runs.
	q := "SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat"
	stmt, _ := sql.Parse(q)
	sel := stmt.(*sql.Select)
	var first []string
	for run := 0; run < 5; run++ {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunPlanParallel(ctx, node, 4)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		for _, r := range res.Rows {
			rows = append(rows, r[0].String()+"|"+r[1].String())
		}
		if run == 0 {
			first = rows
			continue
		}
		if strings.Join(rows, ",") != strings.Join(first, ",") {
			t.Fatalf("run %d order %v != run 0 order %v", run, rows, first)
		}
	}
}

func TestParallelFallbacks(t *testing.T) {
	e := newPartitionedEngine(t, 1, 500)
	ctx := context.Background()

	// Single-file table: the parallel entry point must produce the serial
	// answer (it degenerates to one partition).
	serial, par := runBoth(t, e, "SELECT f_cat, COUNT(*) FROM fact GROUP BY f_cat ORDER BY f_cat", 8)
	expectIdentical(t, "single-file", serial, par)

	// Empty table: no files to split — falls back to the serial path.
	if _, err := e.Execute(ctx, "db", "CREATE TABLE empty (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT COUNT(*) FROM empty")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanParallel(ctx, node, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("empty-table count = %v", res.Rows)
	}
}

func TestParallelLimitBillsLikeSerial(t *testing.T) {
	e := newPartitionedEngine(t, 8, 2000)
	// LIMIT with no blocking operator below it stops pulling early; the
	// parallel path must not run ahead and bill more scanned bytes than
	// the lazy serial path would. (LIMIT under a sort is covered by
	// parallelQueries — the sort drains everything on both paths.)
	for _, q := range []string{
		"SELECT f_key FROM fact LIMIT 5",
		"SELECT f_key, f_val FROM fact WHERE f_val > 10 LIMIT 3 OFFSET 2",
	} {
		serial, par := runBoth(t, e, q, 4)
		expectIdentical(t, q, serial, par)
	}
}

func TestParallelNoIntermediateObjects(t *testing.T) {
	store := objstore.NewMemory()
	e := New(catalog.New(), store)
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE fact (f_key BIGINT NOT NULL, f_val DOUBLE NOT NULL)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 4; f++ {
		k := col.NewVector(col.INT64, 1000)
		v := col.NewVector(col.FLOAT64, 1000)
		for r := 0; r < 1000; r++ {
			k.Ints[r] = int64(f*1000 + r)
			v.Floats[r] = float64(r)
		}
		if err := e.LoadBatch("db", "fact", col.NewBatch(k, v), pixfile.WriterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	objects, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	before := len(objects)
	stmt, _ := sql.Parse("SELECT SUM(f_val) FROM fact")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanParallel(ctx, node, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesIntermediate != 0 {
		t.Fatalf("parallel VM run accounted %d intermediate bytes", res.Stats.BytesIntermediate)
	}
	objects, err = store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if after := len(objects); after != before {
		t.Fatalf("parallel VM run wrote %d objects to the store", after-before)
	}
}

func TestParallelConcurrentQueries(t *testing.T) {
	e := newPartitionedEngine(t, 8, 1000)
	refs := make(map[string]*Result)
	for _, q := range parallelQueries {
		serial, _ := runBoth(t, e, q, 1)
		refs[q] = serial
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i, q := range parallelQueries {
				stmt, err := sql.Parse(q)
				if err != nil {
					errs <- err
					return
				}
				node, err := e.PlanQuery("db", stmt.(*sql.Select))
				if err != nil {
					errs <- err
					return
				}
				res, err := e.RunPlanParallel(ctx, node, 1+(g+i)%5)
				if err != nil {
					errs <- fmt.Errorf("%q: %w", q, err)
					return
				}
				ref := refs[q]
				if len(res.Rows) != len(ref.Rows) || res.Stats != ref.Stats {
					errs <- fmt.Errorf("%q: diverged under concurrency", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestParallelCancellation(t *testing.T) {
	e := newPartitionedEngine(t, 8, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stmt, _ := sql.Parse("SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunPlanParallel(ctx, node, 4); err == nil {
		t.Fatal("canceled context did not abort the parallel run")
	}
}

func TestParallelWorkerErrorPropagates(t *testing.T) {
	e := newPartitionedEngine(t, 6, 500)
	// Corrupt one of the table's files so exactly one worker fails.
	files := mustTable(t, e, "fact").Files
	if err := e.Store().Put(files[3].Key, []byte("not a pixfile")); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT SUM(f_val) FROM fact")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunPlanParallel(context.Background(), node, 6)
	if err == nil {
		t.Fatal("corrupted partition did not fail the query")
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("root cause masked by cancellation: %v", err)
	}
}

func mustTable(t *testing.T, e *Engine, name string) *catalog.Table {
	t.Helper()
	tab, err := e.Catalog().GetTable("db", name)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}
