package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/pixfile"
)

// newTestEngine loads a small TPC-H-flavoured dataset.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(catalog.New(), objstore.NewMetered(objstore.NewMemory()))
	ctx := context.Background()
	mustExec := func(q string) {
		t.Helper()
		if _, err := e.Execute(ctx, "tpch", q); err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
	}
	mustExec("CREATE DATABASE tpch")
	mustExec(`CREATE TABLE nation (n_nationkey BIGINT NOT NULL, n_name VARCHAR NOT NULL, n_regionkey BIGINT NOT NULL)`)
	mustExec(`CREATE TABLE customer (c_custkey BIGINT NOT NULL, c_name VARCHAR NOT NULL, c_nationkey BIGINT NOT NULL, c_mktsegment VARCHAR NOT NULL, c_acctbal DOUBLE NOT NULL)`)
	mustExec(`CREATE TABLE orders (o_orderkey BIGINT NOT NULL, o_custkey BIGINT NOT NULL, o_totalprice DOUBLE NOT NULL, o_orderdate DATE NOT NULL, o_comment VARCHAR)`)
	mustExec(`CREATE TABLE lineitem (l_orderkey BIGINT NOT NULL, l_partkey BIGINT NOT NULL, l_quantity DOUBLE NOT NULL, l_extendedprice DOUBLE NOT NULL, l_discount DOUBLE NOT NULL, l_returnflag VARCHAR NOT NULL, l_shipdate DATE NOT NULL)`)

	mustExec(`INSERT INTO nation VALUES
		(0, 'ALGERIA', 0), (1, 'ARGENTINA', 1), (2, 'BRAZIL', 1), (3, 'CANADA', 1), (4, 'EGYPT', 4)`)
	mustExec(`INSERT INTO customer VALUES
		(1, 'Customer#1', 1, 'BUILDING', 711.56),
		(2, 'Customer#2', 2, 'AUTOMOBILE', 121.65),
		(3, 'Customer#3', 1, 'BUILDING', 7498.12),
		(4, 'Customer#4', 4, 'MACHINERY', 2866.83),
		(5, 'Customer#5', 3, 'HOUSEHOLD', 794.47)`)
	mustExec(`INSERT INTO orders VALUES
		(100, 1, 1000.50, '1995-01-10', 'first'),
		(101, 1, 250.25, '1995-03-01', NULL),
		(102, 2, 870.00, '1994-06-15', 'mid'),
		(103, 3, 4500.75, '1995-02-20', 'big'),
		(104, 4, 120.10, '1993-11-02', 'old'),
		(105, 5, 9999.99, '1995-03-10', 'huge')`)
	mustExec(`INSERT INTO lineitem VALUES
		(100, 1, 10, 1000.0, 0.05, 'N', '1995-01-15'),
		(100, 2, 5, 500.0, 0.00, 'N', '1995-01-20'),
		(101, 3, 2, 250.0, 0.10, 'R', '1995-03-05'),
		(102, 1, 8, 870.0, 0.07, 'A', '1994-06-20'),
		(103, 4, 20, 4500.0, 0.02, 'N', '1995-02-25'),
		(103, 2, 1, 100.0, 0.00, 'R', '1995-03-01'),
		(104, 5, 3, 120.0, 0.04, 'A', '1993-11-10'),
		(105, 1, 50, 9999.0, 0.06, 'N', '1995-03-12')`)
	return e
}

func query(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	r, err := e.Execute(context.Background(), "tpch", q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return r
}

// rowsAsStrings flattens result rows for easy comparison.
func rowsAsStrings(r *Result) []string {
	var out []string
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func expectRows(t *testing.T, r *Result, want ...string) {
	t.Helper()
	got := rowsAsStrings(r)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q\nall: %v", i, got[i], want[i], got)
		}
	}
}

func TestSimpleProjectionAndFilter(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT c_name, c_acctbal FROM customer WHERE c_acctbal > 1000 ORDER BY c_acctbal DESC")
	expectRows(t, r, "Customer#3|7498.12", "Customer#4|2866.83")
	if r.Columns[0] != "c_name" || r.Types[1] != col.FLOAT64 {
		t.Fatalf("metadata wrong: %v %v", r.Columns, r.Types)
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT l_orderkey, l_extendedprice * (1 - l_discount) AS revenue FROM lineitem WHERE l_orderkey = 100 ORDER BY revenue")
	expectRows(t, r, "100|500", "100|950")
}

func TestWhereIn(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT n_name FROM nation WHERE n_nationkey IN (1, 3) ORDER BY n_name")
	expectRows(t, r, "ARGENTINA", "CANADA")
	r = query(t, e, "SELECT n_name FROM nation WHERE n_nationkey NOT IN (0, 1, 2, 3) ORDER BY n_name")
	expectRows(t, r, "EGYPT")
}

func TestBetweenAndDates(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT o_orderkey FROM orders
		WHERE o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1995-02-28' ORDER BY o_orderkey`)
	expectRows(t, r, "100", "103")
}

func TestLikeAndStringFuncs(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT c_name FROM customer WHERE c_mktsegment LIKE 'BUILD%' ORDER BY c_custkey")
	expectRows(t, r, "Customer#1", "Customer#3")
	r = query(t, e, "SELECT UPPER(n_name), LENGTH(n_name), SUBSTR(n_name, 1, 3) FROM nation WHERE n_nationkey = 2")
	expectRows(t, r, "BRAZIL|6|BRA")
}

func TestNullSemantics(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT o_orderkey FROM orders WHERE o_comment IS NULL")
	expectRows(t, r, "101")
	r = query(t, e, "SELECT COUNT(*), COUNT(o_comment) FROM orders")
	expectRows(t, r, "6|5")
	// Comparison with NULL filters the row out (not an error).
	r = query(t, e, "SELECT o_orderkey FROM orders WHERE o_comment = 'first'")
	expectRows(t, r, "100")
	// COALESCE.
	r = query(t, e, "SELECT COALESCE(o_comment, 'none') FROM orders WHERE o_orderkey = 101")
	expectRows(t, r, "none")
}

func TestGlobalAggregates(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT COUNT(*), SUM(l_quantity), MIN(l_shipdate), MAX(l_shipdate), AVG(l_discount) FROM lineitem")
	var sum float64
	for _, d := range []float64{0.05, 0.00, 0.10, 0.07, 0.02, 0.00, 0.04, 0.06} {
		sum += d
	}
	expectRows(t, r, "8|99|1993-11-10|1995-03-12|"+col.FormatFloat(sum/8))
}

func TestGroupByHaving(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT l_returnflag, COUNT(*) AS cnt, SUM(l_extendedprice) AS total
		FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) >= 2 ORDER BY l_returnflag`)
	expectRows(t, r, "A|2|990", "N|4|15999", "R|2|350")
}

func TestGroupByExpression(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT YEAR(o_orderdate) AS y, COUNT(*) FROM orders GROUP BY YEAR(o_orderdate) ORDER BY y`)
	expectRows(t, r, "1993|1", "1994|1", "1995|4")
}

func TestCountDistinct(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT COUNT(DISTINCT l_returnflag), COUNT(DISTINCT l_orderkey) FROM lineitem")
	expectRows(t, r, "3|6")
}

func TestDistinctSelect(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT DISTINCT l_returnflag FROM lineitem ORDER BY l_returnflag")
	expectRows(t, r, "A", "N", "R")
}

func TestExplicitJoin(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT c.c_name, n.n_name FROM customer c
		JOIN nation n ON c.c_nationkey = n.n_nationkey
		WHERE n.n_name = 'ARGENTINA' ORDER BY c.c_custkey`)
	expectRows(t, r, "Customer#1|ARGENTINA", "Customer#3|ARGENTINA")
}

func TestCommaJoinThreeTables(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT c.c_name, o.o_orderkey, l.l_quantity
		FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
			AND c.c_mktsegment = 'BUILDING' AND l.l_returnflag = 'R'
		ORDER BY o.o_orderkey, l.l_quantity`)
	expectRows(t, r, "Customer#1|101|2", "Customer#3|103|1")
}

func TestLeftJoin(t *testing.T) {
	e := newTestEngine(t)
	// Nation 0 (ALGERIA) and 4 (EGYPT w/ customer#4)... ALGERIA has no customers.
	r := query(t, e, `SELECT n.n_name, COUNT(c.c_custkey) AS cnt
		FROM nation n LEFT JOIN customer c ON n.n_nationkey = c.c_nationkey
		GROUP BY n.n_name ORDER BY n.n_name`)
	expectRows(t, r, "ALGERIA|0", "ARGENTINA|2", "BRAZIL|1", "CANADA|1", "EGYPT|1")
}

func TestSelfJoin(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT a.n_name, b.n_name FROM nation a JOIN nation b ON a.n_regionkey = b.n_regionkey
		WHERE a.n_nationkey < b.n_nationkey ORDER BY a.n_name, b.n_name`)
	expectRows(t, r, "ARGENTINA|BRAZIL", "ARGENTINA|CANADA", "BRAZIL|CANADA")
}

func TestOrderByMulti(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT l_returnflag, l_quantity FROM lineitem ORDER BY l_returnflag DESC, l_quantity ASC LIMIT 3")
	expectRows(t, r, "R|1", "R|2", "N|5")
}

func TestOrderByHiddenKey(t *testing.T) {
	e := newTestEngine(t)
	// Sort key not in the select list.
	r := query(t, e, "SELECT c_name FROM customer ORDER BY c_acctbal DESC LIMIT 2")
	expectRows(t, r, "Customer#3", "Customer#4")
	if len(r.Columns) != 1 {
		t.Fatalf("hidden key leaked: %v", r.Columns)
	}
}

func TestOrderByPosition(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT c_name, c_acctbal FROM customer ORDER BY 2 DESC LIMIT 1")
	expectRows(t, r, "Customer#3|7498.12")
}

func TestLimitOffset(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT n_name FROM nation ORDER BY n_nationkey LIMIT 2 OFFSET 1")
	expectRows(t, r, "ARGENTINA", "BRAZIL")
}

func TestCaseExpression(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT o_orderkey, CASE WHEN o_totalprice > 5000 THEN 'big' WHEN o_totalprice > 500 THEN 'mid' ELSE 'small' END AS bucket
		FROM orders ORDER BY o_orderkey`)
	expectRows(t, r, "100|mid", "101|small", "102|mid", "103|mid", "104|small", "105|big")
}

func TestCast(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SELECT CAST(o_totalprice AS BIGINT), CAST(o_orderkey AS VARCHAR) FROM orders WHERE o_orderkey = 100")
	expectRows(t, r, "1000|100")
}

func TestTPCHQ1Shape(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT l_returnflag, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
			AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order
		FROM lineitem WHERE l_shipdate <= DATE '1995-03-05'
		GROUP BY l_returnflag ORDER BY l_returnflag`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", rowsAsStrings(r))
	}
	// Spot-check group A: lineitems (102: 870 @0.07, 104: 120 @0.04).
	got := rowsAsStrings(r)[0]
	want := fmt.Sprintf("A|11|%s|5.5|2", col.FormatFloat(870*0.93+120*0.96))
	if got != want {
		t.Fatalf("group A = %q, want %q", got, want)
	}
}

func TestTPCHQ3Shape(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, o.o_orderdate
		FROM customer c, orders o, lineitem l
		WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
			AND o.o_orderdate < DATE '1995-03-15'
		GROUP BY l.l_orderkey, o.o_orderdate
		ORDER BY revenue DESC LIMIT 10`)
	got := rowsAsStrings(r)
	if len(got) != 3 {
		t.Fatalf("rows = %v", got)
	}
	if !strings.HasPrefix(got[0], "103|") {
		t.Fatalf("top order = %v", got)
	}
}

func TestTPCHQ6Shape(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, `SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
		WHERE l_shipdate >= DATE '1995-01-01' AND l_shipdate < DATE '1996-01-01'
			AND l_discount BETWEEN 0.02 AND 0.08 AND l_quantity < 30`)
	expectRows(t, r, col.FormatFloat(1000*0.05+4500*0.02))
}

func TestDDLAndShow(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "SHOW TABLES")
	expectRows(t, r, "customer", "lineitem", "nation", "orders")
	r = query(t, e, "SHOW DATABASES")
	expectRows(t, r, "tpch")
	r = query(t, e, "DESCRIBE nation")
	if len(r.Rows) != 3 || r.Rows[0][0].S != "n_nationkey" {
		t.Fatalf("describe = %v", rowsAsStrings(r))
	}
	query(t, e, "CREATE TABLE tmp (a BIGINT)")
	query(t, e, "DROP TABLE tmp")
	if _, err := e.Execute(context.Background(), "tpch", "DROP TABLE tmp"); err == nil {
		t.Fatalf("double drop succeeded")
	}
	query(t, e, "DROP TABLE IF EXISTS tmp")
}

func TestExplain(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "EXPLAIN SELECT c_name FROM customer WHERE c_acctbal > 100")
	text := strings.Join(rowsAsStrings(r), "\n")
	if !strings.Contains(text, "Scan tpch.customer") || !strings.Contains(text, "filter=") {
		t.Fatalf("explain = %s", text)
	}
}

func TestPredicatePushdownIntoScan(t *testing.T) {
	e := newTestEngine(t)
	r := query(t, e, "EXPLAIN SELECT c_name FROM customer c JOIN nation n ON c.c_nationkey = n.n_nationkey WHERE c.c_acctbal > 100 AND n.n_name = 'BRAZIL'")
	text := strings.Join(rowsAsStrings(r), "\n")
	// Both single-table conjuncts should be inside their scans, not in a
	// post-join filter.
	if strings.Contains(text, "\nFilter") {
		t.Fatalf("found post-join filter:\n%s", text)
	}
	if !strings.Contains(text, "zonemap=") {
		t.Fatalf("zone-map predicates missing:\n%s", text)
	}
}

func TestQueryErrors(t *testing.T) {
	e := newTestEngine(t)
	bad := []string{
		"SELECT nope FROM customer",
		"SELECT * FROM missing_table",
		"SELECT c_name FROM customer WHERE c_acctbal > 'x'",
		"SELECT SUM(c_name) FROM customer",
		"SELECT c_name FROM customer GROUP BY c_acctbal",
		"SELECT c_custkey FROM customer WHERE SUM(c_acctbal) > 10",
		"SELECT c_custkey, c_custkey FROM customer c, customer c", // dup binding
		"SELECT NOT c_acctbal FROM customer",
		"SELECT c_acctbal % 2 FROM customer", // float modulo
		"SELECT n_name FROM nation ORDER BY 99",
	}
	for _, q := range bad {
		if _, err := e.Execute(context.Background(), "tpch", q); err == nil {
			t.Errorf("query %q unexpectedly succeeded", q)
		}
	}
}

func TestBytesScannedAccounting(t *testing.T) {
	e := newTestEngine(t)
	all := query(t, e, "SELECT * FROM lineitem")
	one := query(t, e, "SELECT l_orderkey FROM lineitem")
	if one.Stats.BytesScanned >= all.Stats.BytesScanned {
		t.Fatalf("projection did not reduce bytes scanned: %d vs %d", one.Stats.BytesScanned, all.Stats.BytesScanned)
	}
	if all.Stats.RowsScanned != 8 {
		t.Fatalf("rows scanned = %d", all.Stats.RowsScanned)
	}
}

func TestZoneMapPruning(t *testing.T) {
	// Load a table with many row groups of sequential keys, then query a
	// narrow range: most groups must be pruned and the answer exact.
	e := New(catalog.New(), objstore.NewMemory())
	ctx := context.Background()
	if _, err := e.Execute(ctx, "db", "CREATE DATABASE db"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(ctx, "db", "CREATE TABLE seq (k BIGINT NOT NULL, v DOUBLE NOT NULL)"); err != nil {
		t.Fatal(err)
	}
	k := col.NewVector(col.INT64, 10000)
	v := col.NewVector(col.FLOAT64, 10000)
	for i := 0; i < 10000; i++ {
		k.Ints[i] = int64(i)
		v.Floats[i] = float64(i) / 2
	}
	if err := e.LoadBatch("db", "seq", col.NewBatch(k, v), pixfile.WriterOptions{RowGroupSize: 500}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Execute(ctx, "db", "SELECT COUNT(*), SUM(v) FROM seq WHERE k >= 1000 AND k < 1500")
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, r, "500|"+col.FormatFloat(float64(1000+1499)*500/2/2))
	if r.Stats.RowGroupsPruned < 15 {
		t.Fatalf("pruned only %d groups (read %d)", r.Stats.RowGroupsPruned, r.Stats.RowGroupsRead)
	}
	if r.Stats.RowGroupsRead > 2 {
		t.Fatalf("read %d groups, want <= 2", r.Stats.RowGroupsRead)
	}
}

func TestInsertValidation(t *testing.T) {
	e := newTestEngine(t)
	ctx := context.Background()
	bad := []string{
		"INSERT INTO nation VALUES (1, 'X')",       // arity
		"INSERT INTO nation VALUES (NULL, 'X', 1)", // NOT NULL
		"INSERT INTO nation VALUES ('s', 'X', 1)",  // type
		"INSERT INTO nation (n_bogus) VALUES (1)",  // unknown col
		"INSERT INTO missing VALUES (1)",           // unknown table
	}
	for _, q := range bad {
		if _, err := e.Execute(ctx, "tpch", q); err == nil {
			t.Errorf("insert %q unexpectedly succeeded", q)
		}
	}
	// Date coercion from string.
	if _, err := e.Execute(ctx, "tpch", "INSERT INTO orders VALUES (200, 1, 1.0, '1999-12-31', 'x')"); err != nil {
		t.Fatalf("date coercion failed: %v", err)
	}
	r := query(t, e, "SELECT o_orderdate FROM orders WHERE o_orderkey = 200")
	expectRows(t, r, "1999-12-31")
}
