package engine

import (
	"context"
	"testing"

	"repro/internal/catalog"
	"repro/internal/objstore"
	"repro/internal/objstore/cache"
	"repro/internal/sql"
)

// runScanAgg plans and runs the canonical scan+filter+agg shape at a
// given VM-side width.
func runScanAgg(t *testing.T, e *Engine, parallelism int) *Result {
	t.Helper()
	ctx := context.Background()
	stmt, err := sql.Parse("SELECT f_cat, COUNT(*), SUM(f_val), AVG(f_val) FROM fact WHERE f_val > 100 GROUP BY f_cat ORDER BY f_cat")
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanParallel(ctx, node, parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameRows(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if !a.Rows[i][c].Equal(b.Rows[i][c]) {
				return false
			}
		}
	}
	return true
}

// TestCacheWarmScanFewerStoreReads is the acceptance shape of the cache
// layer: a warm rerun of the same plan issues strictly fewer (here: zero)
// physical store requests than the cold run, returns identical rows, and
// bills identical bytes-scanned — with or without the cache at all.
func TestCacheWarmScanFewerStoreReads(t *testing.T) {
	met := objstore.NewMetered(objstore.NewMemory())
	cs := cache.New(met, cache.Config{})
	met.AttachCache(cs)
	cached := newPartitionedEngineOn(t, cs, 4, 8192)
	plain := newPartitionedEngine(t, 4, 8192) // identical data, no cache

	base := runScanAgg(t, plain, 1)

	met.Reset()
	cold := runScanAgg(t, cached, 1)
	cs.WaitReadAhead() // let read-ahead settle before snapshotting
	coldUse := met.Usage()

	warm := runScanAgg(t, cached, 1)
	cs.WaitReadAhead()
	warmUse := met.Usage().Sub(coldUse)

	if !sameRows(base, cold) || !sameRows(base, warm) {
		t.Fatalf("cached results diverge from uncached baseline")
	}
	if base.Stats.BytesScanned != cold.Stats.BytesScanned ||
		base.Stats.BytesScanned != warm.Stats.BytesScanned {
		t.Fatalf("billed bytes-scanned differ: uncached %d, cold %d, warm %d",
			base.Stats.BytesScanned, cold.Stats.BytesScanned, warm.Stats.BytesScanned)
	}
	if coldUse.Gets == 0 {
		t.Fatalf("cold run issued no store requests — metering broken")
	}
	if warmUse.Gets != 0 || warmUse.Heads != 0 {
		t.Fatalf("warm run still touched the store: %d gets, %d heads (cold: %d gets)",
			warmUse.Gets, warmUse.Heads, coldUse.Gets)
	}
	if cold.Stats.CacheMisses == 0 {
		t.Fatalf("cold run reported no cache misses: %+v", cold.Stats)
	}
	if warm.Stats.CacheHits == 0 || warm.Stats.CacheMisses != 0 {
		t.Fatalf("warm run cache stats = %d hits / %d misses, want all hits",
			warm.Stats.CacheHits, warm.Stats.CacheMisses)
	}
	if warmUse.CacheHits == 0 {
		t.Fatalf("metered usage missed the attached cache's hits: %+v", warmUse)
	}
	// The uncached engine reports no cache activity at all.
	if base.Stats.CacheHits != 0 || base.Stats.CacheMisses != 0 {
		t.Fatalf("uncached engine reported cache stats: %+v", base.Stats)
	}
}

// TestCacheParallelScan runs the parallel VM path over a shared cache:
// serial and parallel execution must agree bit-for-bit on rows and billed
// bytes, cold and warm. Run with -race: workers of one query contend on
// the same cache shards and single-flight calls.
func TestCacheParallelScan(t *testing.T) {
	cs := cache.New(objstore.NewMemory(), cache.Config{})
	e := newPartitionedEngineOn(t, cs, 8, 4096)

	serial := runScanAgg(t, e, 1)   // cold
	parallel := runScanAgg(t, e, 4) // warm-ish, partitioned across workers
	again := runScanAgg(t, e, 4)    // fully warm

	if !sameRows(serial, parallel) || !sameRows(serial, again) {
		t.Fatalf("parallel cached run diverges from serial")
	}
	if serial.Stats.BytesScanned != parallel.Stats.BytesScanned ||
		serial.Stats.BytesScanned != again.Stats.BytesScanned {
		t.Fatalf("billed bytes differ: serial %d, parallel %d, warm %d",
			serial.Stats.BytesScanned, parallel.Stats.BytesScanned, again.Stats.BytesScanned)
	}
	if again.Stats.CacheHits == 0 {
		t.Fatalf("fully warm parallel run recorded no cache hits")
	}
}

// TestCacheCFIntermediates checks the CF path through the cache: worker
// intermediates written via Put are readable (invalidation correctness)
// and intermediate bytes stay out of the billed scan count.
func TestCacheCFIntermediates(t *testing.T) {
	cs := cache.New(objstore.NewMemory(), cache.Config{})
	e := newPartitionedEngineOn(t, cs, 4, 2048)
	plain := newPartitionedEngine(t, 4, 2048)

	run := func(e *Engine) *Result {
		t.Helper()
		ctx := context.Background()
		stmt, err := sql.Parse("SELECT f_cat, COUNT(*), SUM(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat")
		if err != nil {
			t.Fatal(err)
		}
		node, err := e.PlanQuery("db", stmt.(*sql.Select))
		if err != nil {
			t.Fatal(err)
		}
		split, err := e.SplitForCF(node, "cf-cache-test", 4)
		if err != nil {
			t.Fatal(err)
		}
		var interms []catalog.FileMeta
		for task := range split.Tasks {
			meta, _, err := e.RunWorker(ctx, split, task)
			if err != nil {
				t.Fatal(err)
			}
			interms = append(interms, meta)
		}
		res, err := e.MergeResults(ctx, split, interms)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(plain)
	b := run(e)
	if !sameRows(a, b) || a.Stats.BytesScanned != b.Stats.BytesScanned {
		t.Fatalf("CF path through cache diverges: bytes %d vs %d", a.Stats.BytesScanned, b.Stats.BytesScanned)
	}
	if b.Stats.BytesIntermediate == 0 {
		t.Fatalf("CF run read no intermediates — split did not execute")
	}
}
