package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

func (e *Engine) createTable(db string, s *sql.CreateTable) error {
	t := &catalog.Table{Name: s.Name}
	for _, cd := range s.Columns {
		t.Columns = append(t.Columns, catalog.Column{
			Name:     cd.Name,
			Type:     cd.Type,
			Nullable: !cd.NotNull,
		})
	}
	return e.cat.CreateTable(db, t)
}

func (e *Engine) dropTable(db string, s *sql.DropTable) error {
	err := e.cat.DropTable(db, s.Name)
	if err != nil && s.IfExists {
		return nil
	}
	if err != nil {
		return err
	}
	// Best-effort removal of the table's objects.
	infos, lerr := e.store.List(tableKeyPrefix(db, s.Name))
	if lerr != nil {
		return nil
	}
	for _, info := range infos {
		_ = e.store.Delete(info.Key)
	}
	return nil
}

func (e *Engine) insert(db string, s *sql.Insert) (int, error) {
	t, err := e.cat.GetTable(db, s.Table)
	if err != nil {
		return 0, err
	}
	schema := t.Schema()

	// Map insert columns onto the table schema.
	target := make([]int, 0, len(t.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Columns {
			target = append(target, i)
		}
	} else {
		for _, name := range s.Columns {
			idx := schema.Index(name)
			if idx < 0 {
				return 0, fmt.Errorf("engine: column %q not in table %s", name, s.Table)
			}
			target = append(target, idx)
		}
	}

	batch := col.EmptyBatch(schema)
	for rn, row := range s.Rows {
		if len(row) != len(target) {
			return 0, fmt.Errorf("engine: row %d has %d values, want %d", rn+1, len(row), len(target))
		}
		vals := make([]col.Value, schema.Len())
		for i := range vals {
			vals[i] = col.NullValue(schema.Fields[i].Type)
		}
		for i, expr := range row {
			lit, ok := expr.(*sql.Literal)
			if !ok {
				return 0, fmt.Errorf("engine: INSERT values must be literals, got %s", expr)
			}
			ci := target[i]
			v, err := coerceValue(lit.Val, schema.Fields[ci].Type)
			if err != nil {
				return 0, fmt.Errorf("engine: row %d column %s: %w", rn+1, schema.Fields[ci].Name, err)
			}
			vals[ci] = v
		}
		for ci, v := range vals {
			if v.Null && !schema.Fields[ci].Nullable {
				return 0, fmt.Errorf("engine: row %d: column %s is NOT NULL", rn+1, schema.Fields[ci].Name)
			}
		}
		appendRow(batch, vals)
	}
	if err := e.LoadBatch(db, s.Table, batch, pixfile.WriterOptions{}); err != nil {
		return 0, err
	}
	return batch.N, nil
}

// coerceValue converts a literal to the column type where SQL allows it.
func coerceValue(v col.Value, want col.Type) (col.Value, error) {
	if v.Null {
		return col.NullValue(want), nil
	}
	if v.Type == want {
		return v, nil
	}
	switch {
	case want == col.FLOAT64 && v.Type == col.INT64:
		return col.Float(float64(v.I)), nil
	case want == col.INT64 && v.Type == col.FLOAT64 && v.F == float64(int64(v.F)):
		return col.Int(int64(v.F)), nil
	case want == col.DATE && v.Type == col.STRING:
		d, err := col.ParseDate(v.S)
		if err != nil {
			return col.Value{}, err
		}
		return col.Date(d), nil
	case want == col.TIMESTAMP && v.Type == col.STRING:
		ts, err := col.ParseTimestamp(v.S)
		if err != nil {
			return col.Value{}, err
		}
		return col.Timestamp(ts), nil
	default:
		return col.Value{}, fmt.Errorf("cannot store %s into %s", v.Type, want)
	}
}

func appendRow(b *col.Batch, vals []col.Value) {
	for c, v := range vals {
		vec := b.Vecs[c]
		switch vec.Type {
		case col.BOOL:
			vec.Bools = append(vec.Bools, false)
		case col.INT64, col.DATE, col.TIMESTAMP:
			vec.Ints = append(vec.Ints, 0)
		case col.FLOAT64:
			vec.Floats = append(vec.Floats, 0)
		case col.STRING:
			vec.Strs = append(vec.Strs, "")
		}
		if vec.Valid != nil {
			vec.Valid = append(vec.Valid, true)
		}
		vec.N++
		if v.Null {
			vec.SetNull(vec.N - 1)
		} else {
			vec.Set(vec.N-1, v)
		}
	}
	b.N++
}

func (e *Engine) showDatabases() *Result {
	r := &Result{Columns: []string{"database"}, Types: []col.Type{col.STRING}}
	for _, name := range e.cat.ListDatabases() {
		r.Rows = append(r.Rows, []col.Value{col.Str(name)})
	}
	r.Stats.RowsReturned = int64(len(r.Rows))
	return r
}

func (e *Engine) showTables(db string) (*Result, error) {
	names, err := e.cat.ListTables(db)
	if err != nil {
		return nil, err
	}
	r := &Result{Columns: []string{"table"}, Types: []col.Type{col.STRING}}
	for _, name := range names {
		r.Rows = append(r.Rows, []col.Value{col.Str(name)})
	}
	r.Stats.RowsReturned = int64(len(r.Rows))
	return r, nil
}

func (e *Engine) describe(db, table string) (*Result, error) {
	t, err := e.cat.GetTable(db, table)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Columns: []string{"column", "type", "nullable"},
		Types:   []col.Type{col.STRING, col.STRING, col.BOOL},
	}
	for _, c := range t.Columns {
		r.Rows = append(r.Rows, []col.Value{
			col.Str(c.Name), col.Str(c.Type.String()), col.Bool(c.Nullable),
		})
	}
	r.Stats.RowsReturned = int64(len(r.Rows))
	return r, nil
}
