package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The scan-prefetch budget is a process-wide semaphore over pipeline decode
// workers. Without it the decode concurrency of a host is the product of
// every live scan's workers (parallel query workers × min(ScanPrefetch,
// NumCPU) each), which oversubscribes small hosts as soon as a few
// pipelined scans overlap. With it, at most `budget` decode workers hold a
// token at any instant across all engines in the process.
//
// Deadlock-freedom: worker 0 of every pipeline is exempt (it never takes a
// token), so each scan always makes progress even at budget 0 of free
// tokens; and tokens are held only for the duration of one row-group
// decode — never across a wait on another pipeline — so every acquisition
// eventually succeeds.

// DefaultPrefetchBudget is the token count the process starts with: one
// per CPU, the point past which extra concurrent decodes only thrash.
var DefaultPrefetchBudget = runtime.NumCPU()

var prefetchBudget = struct {
	mu sync.RWMutex
	ch chan struct{} // nil = unlimited

	inUse     atomic.Int64
	highWater atomic.Int64
}{ch: make(chan struct{}, DefaultPrefetchBudget)}

// SetPrefetchBudget resizes the process-wide scan-prefetch budget: n > 0
// sets the token count, 0 restores DefaultPrefetchBudget, negative removes
// the bound entirely. In-flight decodes finish against the budget they
// acquired under.
func SetPrefetchBudget(n int) {
	var ch chan struct{}
	switch {
	case n == 0:
		ch = make(chan struct{}, DefaultPrefetchBudget)
	case n > 0:
		ch = make(chan struct{}, n)
	}
	prefetchBudget.mu.Lock()
	prefetchBudget.ch = ch
	prefetchBudget.mu.Unlock()
}

// prefetchBudgetCh snapshots the current semaphore; acquire and release
// must use the same snapshot so a concurrent SetPrefetchBudget cannot
// unbalance it.
func prefetchBudgetCh() chan struct{} {
	prefetchBudget.mu.RLock()
	defer prefetchBudget.mu.RUnlock()
	return prefetchBudget.ch
}

// acquirePrefetchToken blocks for a token (or context cancellation).
func acquirePrefetchToken(ctx context.Context, ch chan struct{}) bool {
	select {
	case ch <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	v := prefetchBudget.inUse.Add(1)
	for {
		hw := prefetchBudget.highWater.Load()
		if v <= hw || prefetchBudget.highWater.CompareAndSwap(hw, v) {
			return true
		}
	}
}

func releasePrefetchToken(ch chan struct{}) {
	prefetchBudget.inUse.Add(-1)
	<-ch
}

// PrefetchBudgetHighWater reports the maximum number of simultaneously
// held prefetch tokens since the last reset. Test hook.
func PrefetchBudgetHighWater() int64 { return prefetchBudget.highWater.Load() }

// ResetPrefetchBudgetStats clears the high-water mark. Test hook.
func ResetPrefetchBudgetStats() { prefetchBudget.highWater.Store(0) }
