package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/sql"
)

// newSplitEngine loads a multi-file fact table so CF partitioning has
// something to chew on.
func newSplitEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(catalog.New(), objstore.NewMemory())
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE dim (d_key BIGINT NOT NULL, d_name VARCHAR NOT NULL)",
		"CREATE TABLE fact (f_key BIGINT NOT NULL, f_dim BIGINT NOT NULL, f_val DOUBLE NOT NULL, f_cat VARCHAR NOT NULL)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	for d := 0; d < 4; d++ {
		q := fmt.Sprintf("INSERT INTO dim VALUES (%d, 'dim-%d')", d, d)
		if _, err := e.Execute(ctx, "db", q); err != nil {
			t.Fatal(err)
		}
	}
	// 6 files x 500 rows.
	for f := 0; f < 6; f++ {
		k := col.NewVector(col.INT64, 500)
		dm := col.NewVector(col.INT64, 500)
		v := col.NewVector(col.FLOAT64, 500)
		c := col.NewVector(col.STRING, 500)
		for i := 0; i < 500; i++ {
			id := f*500 + i
			k.Ints[i] = int64(id)
			dm.Ints[i] = int64(id % 4)
			v.Floats[i] = float64(id%100) / 10
			c.Strs[i] = []string{"x", "y", "z"}[id%3]
		}
		if err := e.LoadBatch("db", "fact", col.NewBatch(k, dm, v, c), pixfile.WriterOptions{RowGroupSize: 128}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// runBothWays executes q locally and through the CF split path with the
// given worker count, asserting identical results.
func runBothWays(t *testing.T, e *Engine, q string, parts int) (SplitMode, Stats) {
	t.Helper()
	ctx := context.Background()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel := stmt.(*sql.Select)

	localPlan, err := e.PlanQuery("db", sel)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	local, err := e.RunPlan(ctx, localPlan)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	cfPlan, err := e.PlanQuery("db", sel)
	if err != nil {
		t.Fatalf("plan2: %v", err)
	}
	split, err := e.SplitForCF(cfPlan, fmt.Sprintf("q-%d", parts), parts)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	var interms []catalog.FileMeta
	var workerStats Stats
	for i := range split.Tasks {
		meta, st, err := e.RunWorker(ctx, split, i)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workerStats.Add(st)
		interms = append(interms, meta)
	}
	merged, err := e.MergeResults(ctx, split, interms)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}

	lg, mg := rowsAsStrings(local), rowsAsStrings(merged)
	if len(lg) != len(mg) {
		t.Fatalf("row counts differ: local %d vs cf %d\nlocal: %v\ncf: %v", len(lg), len(mg), lg, mg)
	}
	for i := range lg {
		if lg[i] != mg[i] {
			t.Fatalf("row %d differs:\nlocal: %q\ncf:    %q", i, lg[i], mg[i])
		}
	}
	workerStats.Add(merged.Stats)
	return split.Mode, workerStats
}

func TestSplitPartialAggGlobal(t *testing.T) {
	e := newSplitEngine(t)
	mode, _ := runBothWays(t, e, "SELECT COUNT(*), SUM(f_val), AVG(f_val), MIN(f_key), MAX(f_key) FROM fact WHERE f_val > 2", 4)
	if mode != SplitPartialAgg {
		t.Fatalf("mode = %s, want partial-agg", mode)
	}
}

func TestSplitPartialAggGrouped(t *testing.T) {
	e := newSplitEngine(t)
	mode, _ := runBothWays(t, e, `SELECT f_cat, COUNT(*) AS cnt, SUM(f_val) AS total, AVG(f_val) AS mean
		FROM fact GROUP BY f_cat ORDER BY f_cat`, 3)
	if mode != SplitPartialAgg {
		t.Fatalf("mode = %s", mode)
	}
}

func TestSplitPartialAggHavingAndLimit(t *testing.T) {
	e := newSplitEngine(t)
	runBothWays(t, e, `SELECT f_dim, COUNT(*) AS cnt FROM fact
		GROUP BY f_dim HAVING COUNT(*) > 10 ORDER BY cnt DESC, f_dim LIMIT 3`, 5)
}

func TestSplitScanPushdownJoin(t *testing.T) {
	e := newSplitEngine(t)
	mode, _ := runBothWays(t, e, `SELECT d.d_name, COUNT(*) AS cnt, SUM(f.f_val) AS total
		FROM fact f, dim d WHERE f.f_dim = d.d_key AND f.f_val > 1
		GROUP BY d.d_name ORDER BY d.d_name`, 4)
	if mode != SplitScanPushdown {
		t.Fatalf("mode = %s, want scan-pushdown", mode)
	}
}

func TestSplitScanPushdownNoAgg(t *testing.T) {
	e := newSplitEngine(t)
	mode, _ := runBothWays(t, e, "SELECT f_key, f_val FROM fact WHERE f_key >= 1490 AND f_key < 1505 ORDER BY f_key", 6)
	if mode != SplitScanPushdown {
		t.Fatalf("mode = %s", mode)
	}
}

func TestSplitCountDistinctFallsBackToScanMode(t *testing.T) {
	e := newSplitEngine(t)
	mode, _ := runBothWays(t, e, "SELECT COUNT(DISTINCT f_cat) FROM fact", 4)
	if mode != SplitScanPushdown {
		t.Fatalf("mode = %s, want scan-pushdown for COUNT DISTINCT", mode)
	}
}

func TestSplitSingleWorker(t *testing.T) {
	e := newSplitEngine(t)
	runBothWays(t, e, "SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat", 1)
}

func TestSplitMoreWorkersThanFiles(t *testing.T) {
	e := newSplitEngine(t)
	ctx := context.Background()
	stmt, _ := sql.Parse("SELECT COUNT(*) FROM fact")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	split, err := e.SplitForCF(node, "q-many", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.Tasks) != 6 { // clamped to file count
		t.Fatalf("tasks = %d, want 6", len(split.Tasks))
	}
	var interms []catalog.FileMeta
	for i := range split.Tasks {
		m, _, err := e.RunWorker(ctx, split, i)
		if err != nil {
			t.Fatal(err)
		}
		interms = append(interms, m)
	}
	r, err := e.MergeResults(ctx, split, interms)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 3000 {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
}

func planOf(t *testing.T, e *Engine, q string) plan.Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return node
}

// TestSplitOptsChooseMergeSideModes pins which decomposition each plan
// shape gets once the VM-side options are on — and that the default
// options never pick a merge-side mode.
func TestSplitOptsChooseMergeSideModes(t *testing.T) {
	e := newSplitEngine(t)
	opts := SplitOptions{SharedJoinBuild: true, TopN: true}
	cases := []struct {
		q        string
		mode     SplitMode
		hasBuild bool
	}{
		// Aggregation over a single join: partial agg with a shared build.
		{"SELECT d_name, COUNT(*) FROM fact, dim WHERE f_dim = d_key GROUP BY d_name ORDER BY d_name", SplitPartialAgg, true},
		// Join without aggregation: whole-join pushdown.
		{"SELECT f_key, d_name FROM fact, dim WHERE f_dim = d_key ORDER BY f_key", SplitJoinProbe, true},
		// ORDER BY + LIMIT over one scan: worker top-N.
		{"SELECT f_key, f_val FROM fact ORDER BY f_val DESC, f_key LIMIT 3", SplitTopN, false},
		// ORDER BY + LIMIT over a join: worker top-N over the shared build.
		{"SELECT f_key, d_name FROM fact, dim WHERE f_dim = d_key ORDER BY f_key LIMIT 3", SplitTopN, true},
		// Single-scan aggregation: unchanged partial agg, no build side.
		{"SELECT f_cat, COUNT(*) FROM fact GROUP BY f_cat", SplitPartialAgg, false},
		// Distinct aggregates still fall back to scan pushdown.
		{"SELECT COUNT(DISTINCT f_cat) FROM fact", SplitScanPushdown, false},
	}
	for _, c := range cases {
		split, err := e.SplitForCFOpts(planOf(t, e, c.q), "opts", 3, opts)
		if err != nil {
			t.Fatalf("split %q: %v", c.q, err)
		}
		if split.Mode != c.mode {
			t.Errorf("%q: mode = %s, want %s", c.q, split.Mode, c.mode)
		}
		if (split.buildJoin != nil) != c.hasBuild {
			t.Errorf("%q: buildJoin = %v, want hasBuild=%v", c.q, split.buildJoin, c.hasBuild)
		}
	}
	// The CF-safe default must keep joins and top-N on the coordinator.
	for _, q := range []string{
		"SELECT f_key, d_name FROM fact, dim WHERE f_dim = d_key ORDER BY f_key",
		"SELECT f_key, f_val FROM fact ORDER BY f_val DESC, f_key LIMIT 3",
	} {
		split, err := e.SplitForCF(planOf(t, e, q), "default", 3)
		if err != nil {
			t.Fatalf("split %q: %v", q, err)
		}
		if split.Mode != SplitScanPushdown {
			t.Errorf("default opts %q: mode = %s, want scan-pushdown", q, split.Mode)
		}
	}
}

// TestSharedBuildSplitRejectedByCFWorker: a shared-build split cannot run
// as a cloud-function worker (separate processes would re-scan the build
// side once per task, inflating billed bytes).
func TestSharedBuildSplitRejectedByCFWorker(t *testing.T) {
	e := newSplitEngine(t)
	node := planOf(t, e, "SELECT f_key, d_name FROM fact, dim WHERE f_dim = d_key ORDER BY f_key")
	split, err := e.SplitForCFOpts(node, "cf-reject", 2, SplitOptions{SharedJoinBuild: true})
	if err != nil {
		t.Fatal(err)
	}
	if split.buildJoin == nil {
		t.Fatal("expected a shared-build split")
	}
	if _, _, err := e.RunWorker(context.Background(), split, 0); err == nil {
		t.Fatal("RunWorker accepted a shared-build split")
	}
}

// TestSplitTopNRunsThroughCFPath: the top-N split (without a shared build)
// is CF-safe — workers write at most N rows each as intermediates and the
// merge reproduces the serial answer.
func TestSplitTopNRunsThroughCFPath(t *testing.T) {
	e := newSplitEngine(t)
	ctx := context.Background()
	q := "SELECT f_key, f_val FROM fact WHERE f_val > 2 ORDER BY f_val DESC, f_key LIMIT 5 OFFSET 1"

	local, err := e.RunPlan(ctx, planOf(t, e, q))
	if err != nil {
		t.Fatal(err)
	}
	split, err := e.SplitForCFOpts(planOf(t, e, q), "cf-topn", 3, SplitOptions{TopN: true})
	if err != nil {
		t.Fatal(err)
	}
	if split.Mode != SplitTopN {
		t.Fatalf("mode = %s, want top-n", split.Mode)
	}
	var interms []catalog.FileMeta
	for i := range split.Tasks {
		meta, _, err := e.RunWorker(ctx, split, i)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if meta.Rows > 6 { // LIMIT 5 + OFFSET 1
			t.Fatalf("worker %d returned %d rows, want ≤ 6", i, meta.Rows)
		}
		interms = append(interms, meta)
	}
	merged, err := e.MergeResults(ctx, split, interms)
	if err != nil {
		t.Fatal(err)
	}
	lg, mg := rowsAsStrings(local), rowsAsStrings(merged)
	if len(lg) != len(mg) {
		t.Fatalf("rows: local %v vs cf %v", lg, mg)
	}
	for i := range lg {
		if lg[i] != mg[i] {
			t.Fatalf("row %d: local %q vs cf %q", i, lg[i], mg[i])
		}
	}
}

func TestSplitStatsSeparateIntermediates(t *testing.T) {
	e := newSplitEngine(t)
	_, stats := runBothWays(t, e, "SELECT f_cat, COUNT(*) FROM fact GROUP BY f_cat ORDER BY f_cat", 3)
	if stats.BytesScanned <= 0 {
		t.Fatalf("no base bytes accounted")
	}
	if stats.BytesIntermediate <= 0 {
		t.Fatalf("no intermediate bytes accounted")
	}
	if stats.BytesIntermediate >= stats.BytesScanned {
		t.Fatalf("intermediates (%d) should be far smaller than base scan (%d)", stats.BytesIntermediate, stats.BytesScanned)
	}
}

func TestIntermediatesCleanedUp(t *testing.T) {
	e := newSplitEngine(t)
	runBothWays(t, e, "SELECT COUNT(*) FROM fact", 4)
	infos, err := e.Store().List("_intermediate/")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("intermediates left behind: %v", infos)
	}
}
