package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/objstore"
	"repro/internal/sql"
)

// workerEnvMarker routes a re-executed test binary into WorkerMain, so
// multi-process tests spawn real worker processes without building the
// pixels-worker binary first.
const workerEnvMarker = "PIXELS_WORKER_PROCESS"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnvMarker) == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// newProcessInvoker runs worker attempts as subprocesses of this test
// binary against the disk store rooted at dir.
func newProcessInvoker(dir string) *ProcessInvoker {
	return &ProcessInvoker{
		Argv:     []string{os.Args[0]},
		Env:      []string{workerEnvMarker + "=1"},
		StoreDir: dir,
	}
}

// newDiskEngine is the partitioned fixture over a disk store, which worker
// processes can open independently.
func newDiskEngine(t *testing.T, files, rowsPerFile int) (*Engine, string) {
	t.Helper()
	dir := t.TempDir()
	disk, err := objstore.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	return newPartitionedEngineOn(t, disk, files, rowsPerFile), dir
}

var distSeq int

func runDist(t *testing.T, e *Engine, q string, opts DistOptions) *Result {
	t.Helper()
	distSeq++
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanDistributed(context.Background(), node, fmt.Sprintf("dist-%d", distSeq), opts)
	if err != nil {
		t.Fatalf("distributed %q: %v", q, err)
	}
	return res
}

// expectDistMatchesSerial asserts the distributed invariants against a
// serial reference: bit-identical rows and identical billing-relevant
// stats. The exchange itself legitimately adds BytesIntermediate plus the
// RowsScanned/RowGroupsRead of reading the intermediates back, so those
// compare by construction, not equality.
func expectDistMatchesSerial(t *testing.T, q string, serial, dist *Result) {
	t.Helper()
	if len(dist.Rows) != len(serial.Rows) {
		t.Fatalf("%q: %d rows distributed vs %d serial", q, len(dist.Rows), len(serial.Rows))
	}
	for i := range serial.Rows {
		for c := range serial.Rows[i] {
			if !serial.Rows[i][c].Equal(dist.Rows[i][c]) {
				t.Fatalf("%q row %d col %d: distributed %v vs serial %v", q, i, c, dist.Rows[i][c], serial.Rows[i][c])
			}
		}
	}
	if dist.Stats.BytesScanned != serial.Stats.BytesScanned {
		t.Fatalf("%q billed bytes: distributed %d vs serial %d", q, dist.Stats.BytesScanned, serial.Stats.BytesScanned)
	}
	if dist.Stats.RowsFiltered != serial.Stats.RowsFiltered ||
		dist.Stats.RowGroupsPruned != serial.Stats.RowGroupsPruned ||
		dist.Stats.ColumnChunksSkipped != serial.Stats.ColumnChunksSkipped {
		t.Fatalf("%q scan stats: distributed %+v vs serial %+v", q, dist.Stats, serial.Stats)
	}
	if dist.Stats.RowsReturned != serial.Stats.RowsReturned {
		t.Fatalf("%q rows returned: distributed %d vs serial %d", q, dist.Stats.RowsReturned, serial.Stats.RowsReturned)
	}
	if dist.Stats.BytesIntermediate <= 0 {
		t.Fatalf("%q: multi-process run exchanged no intermediate bytes", q)
	}
}

func serialResult(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlan(context.Background(), node)
	if err != nil {
		t.Fatalf("serial %q: %v", q, err)
	}
	return res
}

// TestDistributedMatchesSerial runs the parallel battery through the
// multi-process coordinator at several widths: subprocess workers, store
// shuffle, merge — asserting serial-identical rows and billed bytes, and
// that the in-process LocalInvoker leg (same wire round trip, no process
// boundary) produces bit-identical stats to the subprocess leg.
func TestDistributedMatchesSerial(t *testing.T) {
	e, dir := newDiskEngine(t, 8, 600)
	proc := newProcessInvoker(dir)
	for _, q := range parallelQueries {
		serial := serialResult(t, e, q)
		for _, width := range []int{1, 2, 8} {
			local := runDist(t, e, q, DistOptions{Parts: width, Invoker: &LocalInvoker{Engine: e}})
			expectDistMatchesSerial(t, fmt.Sprintf("%s @%d local", q, width), serial, local)

			dist := runDist(t, e, q, DistOptions{Parts: width, Invoker: proc})
			expectDistMatchesSerial(t, fmt.Sprintf("%s @%d proc", q, width), serial, dist)
			if dist.Stats != local.Stats {
				t.Fatalf("%q @%d: process stats %+v vs local stats %+v", q, width, dist.Stats, local.Stats)
			}
		}
	}
	infos, err := e.Store().List(objstore.IntermediateRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("intermediates left behind: %v", infos)
	}
}

// TestDistributedWorkerTopN pins that ORDER BY + LIMIT runs as a worker
// top-N in the distributed path: each worker ships at most LIMIT+OFFSET
// sorted rows and the coordinator k-way-merges the intermediates.
func TestDistributedWorkerTopN(t *testing.T) {
	e, dir := newDiskEngine(t, 6, 500)
	q := "SELECT f_key, f_val FROM fact WHERE f_val > 100 ORDER BY f_val DESC, f_key LIMIT 5 OFFSET 2"
	serial := serialResult(t, e, q)
	dist := runDist(t, e, q, DistOptions{Parts: 6, Invoker: newProcessInvoker(dir)})
	expectDistMatchesSerial(t, q, serial, dist)
	// 6 workers × ≤7 rows × (8B key + 8B val + footer) stays far under one
	// base file: the bounded top-N actually bounded the exchange.
	if dist.Stats.BytesIntermediate >= dist.Stats.BytesScanned {
		t.Fatalf("top-N exchanged %d intermediate bytes vs %d scanned", dist.Stats.BytesIntermediate, dist.Stats.BytesScanned)
	}
}

// flakyInvoker fails every store operation of chosen attempts through a
// worker-side FaultStore and records the injected-fault counters, proving
// recovery was exercised rather than silently skipped.
type flakyInvoker struct {
	engine *Engine
	// failAttempts maps attempt numbers to fail; other attempts run clean.
	failAttempts map[int]bool

	mu     sync.Mutex
	faults []*objstore.FaultStore
}

func (f *flakyInvoker) Invoke(ctx context.Context, req *WorkerRequest) (*WorkerResponse, error) {
	if !f.failAttempts[req.Attempt] {
		return (&LocalInvoker{Engine: f.engine}).Invoke(ctx, req)
	}
	fs := objstore.NewFaultStore(f.engine.Store(), objstore.FaultConfig{FailFirst: 1 << 30})
	f.mu.Lock()
	f.faults = append(f.faults, fs)
	f.mu.Unlock()
	return (&LocalInvoker{Engine: f.engine, Store: fs}).Invoke(ctx, req)
}

func (f *flakyInvoker) injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, fs := range f.faults {
		n += fs.Stats().InjectedErrors
	}
	return n
}

// TestDistributedRetryBillsOnce: every task's first attempt fails with
// injected store errors; retries succeed. The recovered run must bill
// exactly the bytes of a fault-free run — failed attempts contribute zero
// stats, and only the winning attempt of each task is accounted.
func TestDistributedRetryBillsOnce(t *testing.T) {
	e, _ := newDiskEngine(t, 6, 500)
	q := "SELECT f_cat, COUNT(*), SUM(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat"
	serial := serialResult(t, e, q)
	clean := runDist(t, e, q, DistOptions{Parts: 3, Invoker: &LocalInvoker{Engine: e}})

	flaky := &flakyInvoker{engine: e, failAttempts: map[int]bool{0: true}}
	recovered := runDist(t, e, q, DistOptions{Parts: 3, Invoker: flaky, Retries: 2})

	if flaky.injected() == 0 {
		t.Fatal("fault injection never fired — the test proved nothing")
	}
	expectDistMatchesSerial(t, q, serial, recovered)
	if recovered.Stats != clean.Stats {
		t.Fatalf("retried run stats %+v differ from fault-free run %+v — retries double-billed", recovered.Stats, clean.Stats)
	}
	infos, err := e.Store().List(objstore.IntermediateRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("orphan intermediates after retries: %v", infos)
	}
}

// TestDistributedRetryBillsOnceProcess is the same invariant across a real
// process boundary: attempt 0 gets a fault plan shipped in its request
// (worker-side FaultStore), attempt 1 runs clean.
func TestDistributedRetryBillsOnceProcess(t *testing.T) {
	e, dir := newDiskEngine(t, 6, 500)
	q := "SELECT COUNT(*), SUM(f_val), AVG(f_val) FROM fact WHERE f_val > 50"
	serial := serialResult(t, e, q)
	clean := runDist(t, e, q, DistOptions{Parts: 3, Invoker: newProcessInvoker(dir)})

	proc := newProcessInvoker(dir)
	proc.FaultFor = func(req *WorkerRequest) *objstore.FaultConfig {
		if req.Attempt == 0 {
			// Every store op fails: attempt 0 cannot succeed, so a passing
			// query proves a retry ran inside a fresh worker process.
			return &objstore.FaultConfig{FailFirst: 1 << 30}
		}
		return nil
	}
	recovered := runDist(t, e, q, DistOptions{Parts: 3, Invoker: proc, Retries: 1})
	expectDistMatchesSerial(t, q, serial, recovered)
	if recovered.Stats != clean.Stats {
		t.Fatalf("process-retried stats %+v differ from fault-free %+v", recovered.Stats, clean.Stats)
	}
}

// TestDistributedTornReadFailsLoudly: a torn intermediate read (bit-flipped
// tail, correct length) must surface as an error through the pixfile CRC
// machinery — never as silently wrong rows.
func TestDistributedTornReadFailsLoudly(t *testing.T) {
	e, _ := newDiskEngine(t, 4, 400)
	// Tear reads of intermediates on the coordinator's merge side.
	torn := objstore.NewFaultStore(e.Store(), objstore.FaultConfig{
		TornFirst: 1,
		Ops:       []string{"GetRange"},
		Prefix:    objstore.IntermediateRoot,
	})
	te := New(e.Catalog(), torn)

	stmt, _ := sql.Parse("SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat")
	node, err := te.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	_, err = te.RunPlanDistributed(context.Background(), node, "torn-1", DistOptions{
		Parts: 4, Invoker: &LocalInvoker{Engine: te},
	})
	if err == nil {
		t.Fatal("torn intermediate read produced a result instead of an error")
	}
	if st := torn.Stats(); st.TornReads == 0 {
		t.Fatal("no torn read was injected — the test proved nothing")
	}
}

// slowInvoker delays chosen attempts until released (or context death),
// simulating a straggling worker.
type slowInvoker struct {
	engine  *Engine
	stall   map[int]bool // task -> stall its attempt 0
	release chan struct{}

	mu       sync.Mutex
	attempts []int // attempt numbers observed, in arrival order
}

func (s *slowInvoker) Invoke(ctx context.Context, req *WorkerRequest) (*WorkerResponse, error) {
	s.mu.Lock()
	s.attempts = append(s.attempts, req.Attempt)
	s.mu.Unlock()
	if req.Attempt == 0 && s.stall[req.Task] {
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return (&LocalInvoker{Engine: s.engine}).Invoke(ctx, req)
}

// TestDistributedSpeculativeDuplicate: a straggling task gets a duplicate
// attempt after SpeculativeAfter; the duplicate wins, the straggler is
// cancelled, and exactly one attempt's stats are counted.
func TestDistributedSpeculativeDuplicate(t *testing.T) {
	e, _ := newDiskEngine(t, 6, 500)
	q := "SELECT f_dim, COUNT(*) FROM fact GROUP BY f_dim ORDER BY f_dim"
	serial := serialResult(t, e, q)
	clean := runDist(t, e, q, DistOptions{Parts: 3, Invoker: &LocalInvoker{Engine: e}})

	slow := &slowInvoker{engine: e, stall: map[int]bool{1: true}, release: make(chan struct{})}
	defer close(slow.release)
	res := runDist(t, e, q, DistOptions{
		Parts: 3, Invoker: slow, SpeculativeAfter: 20 * time.Millisecond,
	})
	expectDistMatchesSerial(t, q, serial, res)
	if res.Stats != clean.Stats {
		t.Fatalf("speculative run stats %+v differ from clean run %+v — duplicate double-billed", res.Stats, clean.Stats)
	}
	slow.mu.Lock()
	sawDuplicate := false
	for _, a := range slow.attempts {
		if a == 1 {
			sawDuplicate = true
		}
	}
	slow.mu.Unlock()
	if !sawDuplicate {
		t.Fatal("no speculative duplicate was launched")
	}
}

// TestDistributedCancellationNoGoroutineLeak mirrors the scanpipe
// cancellation test at the coordinator level: cancel a distributed run
// whose workers are frozen mid-read, and assert both the coordinator
// goroutines and the scan pipelines drain to zero.
func TestDistributedCancellationNoGoroutineLeak(t *testing.T) {
	waitCounterZero(t, "distributed goroutines (pre)", DistributedGoroutines)
	gs := &gateStore{
		Store:   objstore.NewMemory(),
		after:   8, // past the first files' footers, inside worker chunk reads
		gate:    make(chan struct{}),
		started: make(chan struct{}),
	}
	e := newPartitionedEngineOn(t, gs, 6, 800)
	gs.reads.Store(0)

	ctx, cancel := context.WithCancel(context.Background())
	stmt, _ := sql.Parse("SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e.RunPlanDistributed(ctx, node, "cancel-leak", DistOptions{
			Parts: 3, Invoker: &LocalInvoker{Engine: e},
		})
		errc <- err
	}()

	select {
	case <-gs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("workers never reached the blocked read")
	}
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled distributed run returned no error")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled distributed run did not return")
	}
	close(gs.gate) // release attempts still parked in the store

	waitCounterZero(t, "distributed goroutines", DistributedGoroutines)
	waitCounterZero(t, "pipeline goroutines", PipelineGoroutines)
}

// TestDistributedCancellationKillsWorkerProcesses: cancelling the
// coordinator must tear down in-flight worker processes — no orphans.
func TestDistributedCancellationKillsWorkerProcesses(t *testing.T) {
	e, dir := newDiskEngine(t, 6, 800)
	proc := newProcessInvoker(dir)
	// Slow every worker store op so processes are reliably mid-flight when
	// the cancel lands.
	proc.Fault = &objstore.FaultConfig{Latency: 40 * time.Millisecond}

	ctx, cancel := context.WithCancel(context.Background())
	stmt, _ := sql.Parse("SELECT f_cat, SUM(f_val) FROM fact GROUP BY f_cat")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e.RunPlanDistributed(ctx, node, "cancel-proc", DistOptions{Parts: 3, Invoker: proc})
		errc <- err
	}()

	deadline := time.Now().Add(10 * time.Second)
	for proc.LiveProcesses() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker process ever started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled run returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return")
	}
	waitCounterZero(t, "live worker processes", proc.LiveProcesses)
	waitCounterZero(t, "distributed goroutines", DistributedGoroutines)
}

func waitCounterZero(t *testing.T, what string, counter func() int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for counter() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked: %d alive", what, counter())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerFailureReturnsZeroStats: every RunWorker error path must return
// zero Stats, or retried workers would double-bill whatever the failed
// attempt had scanned before dying.
func TestWorkerFailureReturnsZeroStats(t *testing.T) {
	e := newPartitionedEngine(t, 4, 300)
	// Corrupt the last file so the worker fails mid-execution, after some
	// row groups were already scanned and accounted.
	files := mustTable(t, e, "fact").Files
	if err := e.Store().Put(files[3].Key, []byte("not a pixfile")); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT COUNT(*), SUM(f_val) FROM fact")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	split, err := e.SplitForCF(node, "zero-stats", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := e.RunWorker(context.Background(), split, 0)
	if err == nil {
		t.Fatal("worker over a corrupt file succeeded")
	}
	if st != (Stats{}) {
		t.Fatalf("failed worker leaked stats: %+v", st)
	}

	// Same for a worker process: a failing request reports zero stats.
	if resp := e.ExecuteWorkerRequest(context.Background(), mustRequest(t, split, 0, 0)); resp.Error == "" || resp.Stats != (Stats{}) {
		t.Fatalf("worker response after failure: %+v", resp)
	}
}

func mustRequest(t *testing.T, split *CFSplit, task, attempt int) *WorkerRequest {
	t.Helper()
	req, err := NewWorkerRequest(split, task, attempt)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestDistributedFallsBackWithoutScans: unsplittable plans run serially.
func TestDistributedFallsBackWithoutScans(t *testing.T) {
	e := newPartitionedEngine(t, 2, 100)
	ctx := context.Background()
	if _, err := e.Execute(ctx, "db", "CREATE TABLE empty (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT COUNT(*) FROM empty")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunPlanDistributed(ctx, node, "fallback", DistOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("empty-table count = %v", res.Rows)
	}
}

// TestDistributedWorkerErrorPropagatesRootCause: when a task exhausts its
// retries, the query fails with the worker's error, not a masking
// cancellation, and sibling intermediates are swept.
func TestDistributedWorkerErrorPropagates(t *testing.T) {
	e, _ := newDiskEngine(t, 6, 300)
	files := mustTable(t, e, "fact").Files
	if err := e.Store().Put(files[5].Key, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	stmt, _ := sql.Parse("SELECT SUM(f_val) FROM fact")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.RunPlanDistributed(context.Background(), node, "err-prop", DistOptions{
		Parts: 6, Invoker: &LocalInvoker{Engine: e}, Retries: 1,
	})
	if err == nil {
		t.Fatal("corrupt partition did not fail the query")
	}
	if strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("root cause masked by cancellation: %v", err)
	}
	infos, err := e.Store().List(objstore.IntermediateRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("failed query left intermediates: %v", infos)
	}
}
