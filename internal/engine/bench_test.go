package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/objstore/cache"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

// benchEngine loads a 100k-row fact table once per benchmark binary.
func benchEngine(b *testing.B) *Engine {
	b.Helper()
	e := New(catalog.New(), objstore.NewMemory())
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE dim (d_key BIGINT NOT NULL, d_name VARCHAR NOT NULL)",
		"CREATE TABLE fact (f_key BIGINT NOT NULL, f_dim BIGINT NOT NULL, f_val DOUBLE NOT NULL, f_cat VARCHAR NOT NULL)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			b.Fatal(err)
		}
	}
	for d := 0; d < 16; d++ {
		if _, err := e.Execute(ctx, "db", fmt.Sprintf("INSERT INTO dim VALUES (%d, 'dim-%d')", d, d)); err != nil {
			b.Fatal(err)
		}
	}
	const n = 100_000
	k := col.NewVector(col.INT64, n)
	dm := col.NewVector(col.INT64, n)
	v := col.NewVector(col.FLOAT64, n)
	c := col.NewVector(col.STRING, n)
	cats := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		k.Ints[i] = int64(i)
		dm.Ints[i] = int64(i % 16)
		v.Floats[i] = float64(i%1000) / 10
		c.Strs[i] = cats[i%4]
	}
	if err := e.LoadBatch("db", "fact", col.NewBatch(k, dm, v, c), pixfile.WriterOptions{RowGroupSize: 8192}); err != nil {
		b.Fatal(err)
	}
	return e
}

func benchQuery(b *testing.B, e *Engine, q string) {
	b.Helper()
	ctx := context.Background()
	stmt, err := sql.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.RunPlan(ctx, node)
		if err != nil {
			b.Fatal(err)
		}
		bytes += res.Stats.BytesScanned
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkEngineScan measures a full single-column scan.
func BenchmarkEngineScan(b *testing.B) {
	benchQuery(b, benchEngine(b), "SELECT SUM(f_val) FROM fact")
}

// BenchmarkEngineFilterAgg measures filter + grouped aggregation.
func BenchmarkEngineFilterAgg(b *testing.B) {
	benchQuery(b, benchEngine(b), "SELECT f_cat, COUNT(*), AVG(f_val) FROM fact WHERE f_val > 50 GROUP BY f_cat")
}

// BenchmarkEngineZoneMapPointLookup measures a pruned point query.
func BenchmarkEngineZoneMapPointLookup(b *testing.B) {
	benchQuery(b, benchEngine(b), "SELECT f_val FROM fact WHERE f_key = 77777")
}

// BenchmarkEngineHashJoin measures a fact-dim join with aggregation.
func BenchmarkEngineHashJoin(b *testing.B) {
	benchQuery(b, benchEngine(b), `SELECT d.d_name, SUM(f.f_val) FROM fact f, dim d
		WHERE f.f_dim = d.d_key GROUP BY d.d_name ORDER BY d.d_name`)
}

// BenchmarkEngineTopN measures sort + limit.
func BenchmarkEngineTopN(b *testing.B) {
	benchQuery(b, benchEngine(b), "SELECT f_key, f_val FROM fact ORDER BY f_val DESC LIMIT 10")
}

// BenchmarkEngineCFSplit measures the full CF path: split, 4 workers,
// merge.
func BenchmarkEngineCFSplit(b *testing.B) {
	e := benchEngine(b)
	ctx := context.Background()
	stmt, _ := sql.Parse("SELECT f_cat, COUNT(*), SUM(f_val) FROM fact GROUP BY f_cat")
	sel := stmt.(*sql.Select)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		split, err := e.SplitForCF(node, fmt.Sprintf("bench-%d", i), 4)
		if err != nil {
			b.Fatal(err)
		}
		var interms []catalog.FileMeta
		for t := range split.Tasks {
			meta, _, err := e.RunWorker(ctx, split, t)
			if err != nil {
				b.Fatal(err)
			}
			interms = append(interms, meta)
		}
		if _, err := e.MergeResults(ctx, split, interms); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelBenchEngine lazily loads one shared multi-file fact table (16
// files × 50k rows) for the serial-vs-parallel comparison benchmarks.
var parallelBenchEngine struct {
	once sync.Once
	e    *Engine
}

func benchPartitionedEngine(b *testing.B) *Engine {
	b.Helper()
	parallelBenchEngine.once.Do(func() {
		parallelBenchEngine.e = newPartitionedEngine(b, 16, 50_000)
	})
	// A setup failure in an earlier benchmark leaves the once done with a
	// nil engine; fail cleanly instead of nil-panicking.
	if parallelBenchEngine.e == nil {
		b.Fatal("shared bench engine setup failed in an earlier benchmark")
	}
	return parallelBenchEngine.e
}

// benchParallelQuery runs one query through RunPlanParallel at a given
// VM-side width on the shared partitioned engine, reporting allocations so
// the typed hash paths are accountable in -benchmem output.
func benchParallelQuery(b *testing.B, query string, parallelism int) {
	e := benchPartitionedEngine(b)
	ctx := context.Background()
	stmt, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.RunPlanParallel(ctx, node, parallelism)
		if err != nil {
			b.Fatal(err)
		}
		bytes += res.Stats.BytesScanned
	}
	b.SetBytes(bytes / int64(b.N))
}

// benchScanAgg runs the canonical partition-parallel shape — scan + filter
// + grouped aggregation — at a given VM-side width.
func benchScanAgg(b *testing.B, parallelism int) {
	benchParallelQuery(b, "SELECT f_cat, COUNT(*), SUM(f_val), AVG(f_val) FROM fact WHERE f_val > 100 GROUP BY f_cat", parallelism)
}

// BenchmarkSerialScanAgg is the single-threaded baseline for
// BenchmarkParallelScanAgg.
func BenchmarkSerialScanAgg(b *testing.B) { benchScanAgg(b, 1) }

// BenchmarkParallelScanAgg measures the intra-query parallel VM path at
// width 4 over the same query and data as BenchmarkSerialScanAgg.
func BenchmarkParallelScanAgg(b *testing.B) { benchScanAgg(b, 4) }

// benchJoinAgg runs the merge-side join shape: fact partitions probe one
// shared dimension build table, partial aggregation rides in the workers.
func benchJoinAgg(b *testing.B, parallelism int) {
	benchParallelQuery(b, `SELECT d_name, COUNT(*), SUM(f_val) FROM fact, dim
		WHERE f_dim = d_key GROUP BY d_name ORDER BY d_name`, parallelism)
}

// BenchmarkSerialJoinAgg is the single-threaded baseline for
// BenchmarkParallelJoinAgg (same typed hash join, no partitioning).
func BenchmarkSerialJoinAgg(b *testing.B) { benchJoinAgg(b, 1) }

// BenchmarkParallelJoinAgg measures the shared-build partitioned hash join
// at width 4.
func BenchmarkParallelJoinAgg(b *testing.B) { benchJoinAgg(b, 4) }

// benchTopN runs ORDER BY + LIMIT: serial materializes a full sort; the
// parallel path runs a bounded top-N per worker and merges k·N rows.
func benchTopN(b *testing.B, parallelism int) {
	benchParallelQuery(b, "SELECT f_key, f_val FROM fact ORDER BY f_val DESC, f_key LIMIT 10", parallelism)
}

// BenchmarkSerialTopN is the single-threaded baseline for
// BenchmarkParallelTopN.
func BenchmarkSerialTopN(b *testing.B) { benchTopN(b, 1) }

// BenchmarkParallelTopN measures the worker top-N pushdown at width 4.
func BenchmarkParallelTopN(b *testing.B) { benchTopN(b, 4) }

// cachedBenchEngine lazily loads one shared fact table behind the
// CachingStore → Metered → Memory stack, so the cold/warm variants can
// report physical store GETs per op alongside ns/op.
var cachedBenchEngine struct {
	once sync.Once
	e    *Engine
	met  *objstore.Metered
	cs   *cache.CachingStore
}

func benchCachedEngine(b *testing.B) (*Engine, *objstore.Metered, *cache.CachingStore) {
	b.Helper()
	cachedBenchEngine.once.Do(func() {
		met := objstore.NewMetered(objstore.NewMemory())
		cs := cache.New(met, cache.Config{})
		met.AttachCache(cs)
		cachedBenchEngine.e = newPartitionedEngineOn(b, cs, 16, 50_000)
		cachedBenchEngine.met = met
		cachedBenchEngine.cs = cs
	})
	if cachedBenchEngine.e == nil {
		b.Fatal("shared cached bench engine setup failed in an earlier benchmark")
	}
	return cachedBenchEngine.e, cachedBenchEngine.met, cachedBenchEngine.cs
}

// benchScanAggCached runs the same plan as benchScanAgg through the read
// cache. warm primes the cache once and keeps it; cold flushes before
// every iteration. Billed bytes-scanned are identical in both modes (and
// to the cacheless benchmarks) — only the physical store-gets/op and
// ns/op move.
func benchScanAggCached(b *testing.B, parallelism int, warm bool) {
	e, met, cs := benchCachedEngine(b)
	ctx := context.Background()
	stmt, err := sql.Parse("SELECT f_cat, COUNT(*), SUM(f_val), AVG(f_val) FROM fact WHERE f_val > 100 GROUP BY f_cat")
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	runOnce := func() int64 {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.RunPlanParallel(ctx, node, parallelism)
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.BytesScanned
	}
	cs.Flush()
	if warm {
		runOnce()
		cs.WaitReadAhead()
	}
	met.Reset()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		if !warm {
			b.StopTimer()
			cs.Flush()
			met.Reset()
			b.StartTimer()
		}
		bytes += runOnce()
	}
	b.StopTimer()
	cs.WaitReadAhead()
	u := met.Usage()
	gets := float64(u.Gets)
	if warm {
		gets /= float64(b.N) // cold resets per iteration; warm accumulates
	}
	b.ReportMetric(gets, "store-gets/op")
	b.SetBytes(bytes / int64(b.N))
}

// Cold/warm cache variants of the ScanAgg benchmarks: same plan and data,
// differing only in cache residency. Warm runs must show near-zero
// store-gets/op and lower ns/op than cold; billed bytes are identical.
func BenchmarkSerialScanAggColdCache(b *testing.B)   { benchScanAggCached(b, 1, false) }
func BenchmarkSerialScanAggWarmCache(b *testing.B)   { benchScanAggCached(b, 1, true) }
func BenchmarkParallelScanAggColdCache(b *testing.B) { benchScanAggCached(b, 0, false) }
func BenchmarkParallelScanAggWarmCache(b *testing.B) { benchScanAggCached(b, 0, true) }

// BenchmarkPixfileWrite measures columnar encoding throughput.
func BenchmarkPixfileWrite(b *testing.B) {
	const n = 50_000
	k := col.NewVector(col.INT64, n)
	v := col.NewVector(col.FLOAT64, n)
	s := col.NewVector(col.STRING, n)
	for i := 0; i < n; i++ {
		k.Ints[i] = int64(i)
		v.Floats[i] = float64(i) * 1.5
		s.Strs[i] = []string{"AIR", "RAIL", "SHIP"}[i%3]
	}
	batch := col.NewBatch(k, v, s)
	schema := col.NewSchema(
		col.Field{Name: "k", Type: col.INT64},
		col.Field{Name: "v", Type: col.FLOAT64},
		col.Field{Name: "s", Type: col.STRING},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := pixfile.NewWriter(schema, pixfile.WriterOptions{})
		if err := w.Append(batch); err != nil {
			b.Fatal(err)
		}
		data, err := w.Finish()
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
	}
}
