package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/objstore/cache"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

// selBench holds the shared selective-scan fixture: a wide table whose
// filter matches cluster into whole row groups, so ~99% of row groups
// contain no match at ~1% selectivity. The predicate is modulo arithmetic,
// which zone maps cannot extract — any row-group skipping must come from
// the scan evaluating the filter before materializing the payload columns.
var selBench struct {
	once sync.Once
	err  error   // first fixture-load failure, reported by every benchmark
	e    *Engine // plain in-memory store
	ce   *Engine // behind the read cache
	cs   *cache.CachingStore
}

const (
	selFiles       = 8
	selRowsPerFile = 65536
	selRowGroup    = 2048
)

// loadSelTable loads the selective-scan table into e: a small DICT-coded
// tag column (the predicate), a sequence column, and four payload columns
// (two numeric, two string) that dominate the bytes of every row group.
func loadSelTable(e *Engine) error {
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		`CREATE TABLE sel (s_seq BIGINT NOT NULL, s_tag VARCHAR NOT NULL,
			s_a DOUBLE NOT NULL, s_b BIGINT NOT NULL,
			s_c VARCHAR NOT NULL, s_d VARCHAR NOT NULL)`,
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			return err
		}
	}
	// Payload columns model a realistic wide fact table: pseudo-random
	// integers (PLAIN varints — no run/delta collapse) and ~20-char
	// medium-cardinality strings, so materializing a row group costs real
	// decode work. The s_seq predicate column stays cheap (sequential →
	// DELTA), which is exactly the asymmetry late materialization exploits.
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	for f := 0; f < selFiles; f++ {
		seq := col.NewVector(col.INT64, selRowsPerFile)
		tag := col.NewVector(col.STRING, selRowsPerFile)
		a := col.NewVector(col.FLOAT64, selRowsPerFile)
		bb := col.NewVector(col.INT64, selRowsPerFile)
		c := col.NewVector(col.STRING, selRowsPerFile)
		d := col.NewVector(col.STRING, selRowsPerFile)
		for r := 0; r < selRowsPerFile; r++ {
			i := f*selRowsPerFile + r
			h := int64(uint32(i*2654435761) >> 1) // cheap hash, full range
			seq.Ints[r] = int64(i)
			// Every 100th row group is entirely hits; the rest are misses.
			if (i/selRowGroup)%100 == 0 {
				tag.Strs[r] = "hit"
			} else {
				tag.Strs[r] = "miss"
			}
			a.Floats[r] = float64(h) / 97
			bb.Ints[r] = h * 31
			c.Strs[r] = fmt.Sprintf("%s-%08d-part", words[i%len(words)], h%100000)
			d.Strs[r] = fmt.Sprintf("note %s %s #%06d", words[(i/3)%len(words)], words[(i/7)%len(words)], h%1000000)
		}
		if err := e.LoadBatch("db", "sel", col.NewBatch(seq, tag, a, bb, c, d),
			pixfile.WriterOptions{RowGroupSize: selRowGroup}); err != nil {
			return err
		}
	}
	return nil
}

func selBenchEngines(b *testing.B) (*Engine, *Engine, *cache.CachingStore) {
	b.Helper()
	selBench.once.Do(func() {
		e := New(catalog.New(), objstore.NewMemory())
		if err := loadSelTable(e); err != nil {
			selBench.err = err
			return
		}
		cs := cache.New(objstore.NewMemory(), cache.Config{})
		ce := New(catalog.New(), cs)
		if err := loadSelTable(ce); err != nil {
			selBench.err = err
			return
		}
		selBench.e, selBench.ce, selBench.cs = e, ce, cs
	})
	if selBench.e == nil {
		b.Fatalf("selective-scan bench fixture failed to load: %v", selBench.err)
	}
	return selBench.e, selBench.ce, selBench.cs
}

// Queries: the 1% shape touches all four payload columns but matches only
// every 100th row group (s_seq is sequential, so s_seq % (100·rowGroup)
// < rowGroup selects exactly the rows of those groups — a shape min/max
// zone maps cannot see); the 50% shape matches half the rows of every row
// group (no group can be skipped — it measures the compaction path, not
// chunk skipping).
const (
	selQuery1pct  = `SELECT COUNT(*), SUM(s_a), SUM(s_b), MIN(s_c), MAX(s_d) FROM sel WHERE s_seq % 204800 < 2048`
	selQuery50pct = `SELECT COUNT(*), SUM(s_a), SUM(s_b), MIN(s_c), MAX(s_d) FROM sel WHERE s_seq % 2 = 0`
)

// benchSelectiveScan runs one selective-scan query serially on the plain
// in-memory fixture.
func benchSelectiveScan(b *testing.B, query string) {
	e, _, _ := selBenchEngines(b)
	ctx := context.Background()
	benchSelectiveScanOn(b, e, ctx, query)
}

// benchSelectiveScanInterpreted is the same scan with the vec kernels off —
// the row-at-a-time Evaluator baseline of the A7 ablation.
func benchSelectiveScanInterpreted(b *testing.B, query string) {
	e, _, _ := selBenchEngines(b)
	e.SetVectorized(false)
	defer e.SetVectorized(true)
	benchSelectiveScanOn(b, e, context.Background(), query)
}

func benchSelectiveScanOn(b *testing.B, e *Engine, ctx context.Context, query string) {
	stmt, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.RunPlan(ctx, node)
		if err != nil {
			b.Fatal(err)
		}
		bytes += res.Stats.BytesScanned
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkSelectiveScan1pct: ~1% selectivity, match rows clustered into
// whole row groups — the late-materialization sweet spot.
func BenchmarkSelectiveScan1pct(b *testing.B) { benchSelectiveScan(b, selQuery1pct) }

// BenchmarkSelectiveScan50pct: ~50% selectivity spread over every row
// group — no chunk can be skipped; measures filter-first compaction (and,
// with the kernels on, selection-aware payload decode of partial groups).
func BenchmarkSelectiveScan50pct(b *testing.B) { benchSelectiveScan(b, selQuery50pct) }

// The Interp variants run the identical scans with vectorized evaluation
// disabled — the interpreted baseline the BENCH_5 ablation records.
func BenchmarkSelectiveScan1pctInterp(b *testing.B) {
	benchSelectiveScanInterpreted(b, selQuery1pct)
}

func BenchmarkSelectiveScan50pctInterp(b *testing.B) {
	benchSelectiveScanInterpreted(b, selQuery50pct)
}

// benchSelectiveScanCached is the same scan through the read cache, cold
// (flushed before every iteration) or warm.
func benchSelectiveScanCached(b *testing.B, query string, warm bool) {
	_, e, cs := selBenchEngines(b)
	ctx := context.Background()
	stmt, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	sel := stmt.(*sql.Select)
	runOnce := func() int64 {
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.RunPlan(ctx, node)
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.BytesScanned
	}
	cs.Flush()
	if warm {
		runOnce()
		cs.WaitReadAhead()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		if !warm {
			b.StopTimer()
			cs.Flush()
			b.StartTimer()
		}
		bytes += runOnce()
	}
	b.StopTimer()
	cs.WaitReadAhead()
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkSelectiveScan1pctColdCache(b *testing.B) {
	benchSelectiveScanCached(b, selQuery1pct, false)
}

func BenchmarkSelectiveScan1pctWarmCache(b *testing.B) {
	benchSelectiveScanCached(b, selQuery1pct, true)
}

func BenchmarkSelectiveScan50pctColdCache(b *testing.B) {
	benchSelectiveScanCached(b, selQuery50pct, false)
}

func BenchmarkSelectiveScan50pctWarmCache(b *testing.B) {
	benchSelectiveScanCached(b, selQuery50pct, true)
}
