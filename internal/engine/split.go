package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// SplitMode says how a plan was decomposed for CF execution.
type SplitMode uint8

// Split modes. PartialAgg pushes scan+filter+partial aggregation into the
// workers and merges on the coordinator (the common analytic case);
// ScanPushdown pushes scan+filter of the largest table and leaves joins
// and aggregation to the coordinator-side top-level plan — exactly the
// "push down the expensive operators into a sub-plan" flow of Sec. III-A.
// JoinProbe pushes a whole single-join pipeline into the workers,
// partitioning the probe side while the coordinator prepares one shared
// build table; TopN replaces a worker-side ORDER BY + LIMIT with a bounded
// top-N so each worker returns at most N rows.
const (
	SplitPartialAgg SplitMode = iota
	SplitScanPushdown
	SplitJoinProbe
	SplitTopN
)

func (m SplitMode) String() string {
	switch m {
	case SplitPartialAgg:
		return "partial-agg"
	case SplitJoinProbe:
		return "join-probe"
	case SplitTopN:
		return "top-n"
	default:
		return "scan-pushdown"
	}
}

// SplitOptions widen the decompositions SplitForCFOpts may choose beyond
// the CF-safe default. Both default to off: the CF path runs workers in
// separate processes where a build side cannot be shared, and keeping the
// default split stable preserves the cloud-function billing calibration.
type SplitOptions struct {
	// SharedJoinBuild allows splits whose worker fragment contains the
	// plan's single hash join: the coordinator evaluates the (smaller)
	// build side exactly once and shares the immutable hash table across
	// all probe workers. Only the in-process parallel VM path can honor
	// this — RunWorker rejects such splits.
	SharedJoinBuild bool
	// TopN allows substituting a bounded per-worker top-N for a plan-level
	// ORDER BY + LIMIT, so the coordinator merges k·N rows instead of
	// k sorted partitions.
	TopN bool
}

// WorkerTask is the unit of work one CF worker executes: the shared
// fragment plan over this task's file partition.
type WorkerTask struct {
	Part  int
	Files []catalog.FileMeta
}

// CFSplit is a plan decomposed into CF worker tasks plus a coordinator
// merge plan.
type CFSplit struct {
	Mode    SplitMode
	QueryID string
	Tasks   []WorkerTask

	workerPlan plan.Node      // fragment executed by each worker
	partScan   *plan.ScanNode // the partitioned scan inside workerPlan
	interm     *plan.ScanNode // synthetic scan over intermediates
	mergePlan  plan.Node
	// buildJoin, when set, is the join inside workerPlan whose build
	// (right) side must be evaluated once by the coordinator and shared
	// across workers (SplitOptions.SharedJoinBuild).
	buildJoin *plan.JoinNode
	// sortedMerge/mergeKeys, set for top-N splits, are the merge plan with
	// the coordinator SortNode elided: the in-process parallel path feeds
	// it the k worker streams through a streaming k-way merge (the worker
	// outputs are already sorted under mergeKeys), so the coordinator never
	// re-sorts the k·N survivors. The CF path keeps mergePlan — its
	// intermediates arrive as unordered files.
	sortedMerge plan.Node
	mergeKeys   []plan.SortKey
}

// WorkerSchema is the schema of worker intermediate files.
func (s *CFSplit) WorkerSchema() *col.Schema { return s.workerPlan.Schema() }

// SplitForCF decomposes a bound plan into `parts` CF worker tasks with the
// default (CF-safe) options. It returns an error only on internal
// inconsistencies; any plan with at least one scannable file can be split.
func (e *Engine) SplitForCF(node plan.Node, queryID string, parts int) (*CFSplit, error) {
	return e.SplitForCFOpts(node, queryID, parts, SplitOptions{})
}

// SplitForCFOpts is SplitForCF with explicit decomposition options. The
// shapes are tried most-specific first: partial aggregation (optionally
// over a shared-build join), worker top-N for ORDER BY + LIMIT, whole-join
// pushdown, and finally pushdown of the largest scan alone.
func (e *Engine) SplitForCFOpts(node plan.Node, queryID string, parts int, opts SplitOptions) (*CFSplit, error) {
	if parts < 1 {
		parts = 1
	}
	split := &CFSplit{QueryID: queryID}

	agg, joins, aggCount := analyze(node)
	scans := plan.Scans(node)
	if len(scans) == 0 {
		return nil, fmt.Errorf("engine: plan has no scans to push down")
	}

	done := false
	if agg != nil && aggCount == 1 && !hasDistinctAgg(agg) {
		if join, probe, ok := pushableFragment(agg.Child, opts.SharedJoinBuild); ok {
			if err := e.splitPartialAgg(split, node, agg, probe, join); err != nil {
				return nil, err
			}
			done = true
		}
	}
	if !done && opts.TopN {
		if lim, srt, frag := topNShape(node); frag != nil {
			if join, probe, ok := pushableFragment(frag, opts.SharedJoinBuild); ok {
				e.splitTopN(split, node, lim, srt, probe, join)
				done = true
			}
		}
	}
	if !done && opts.SharedJoinBuild && joins == 1 {
		frag := pushdownRoot(node)
		if join, probe, ok := pushableFragment(frag, true); ok && join != nil {
			e.splitJoinProbe(split, node, frag, probe, join)
			done = true
		}
	}
	if !done {
		e.splitScanPushdown(split, node, scans)
	}

	// Worker goroutines share the plan nodes; force every lazy Schema()
	// cache now so they never race on it.
	warmSchemas(split.workerPlan)
	warmSchemas(split.mergePlan)
	if split.sortedMerge != nil {
		warmSchemas(split.sortedMerge)
	}

	// Partition the chosen scan's files into contiguous ranges (sizes
	// differing by at most one file). Contiguity matters beyond balance:
	// consuming worker outputs in partition order then reproduces the
	// serial plan's arrival order exactly, so sort ties, top-N cutoffs and
	// group first-appearance orders resolve identically to serial
	// execution — not merely deterministically.
	files := split.partScan.Table.Files
	if len(files) == 0 {
		return nil, fmt.Errorf("engine: table %s has no files", split.partScan.Table.Name)
	}
	if parts > len(files) {
		parts = len(files)
	}
	for p := 0; p < parts; p++ {
		lo := p * len(files) / parts
		hi := (p + 1) * len(files) / parts
		split.Tasks = append(split.Tasks, WorkerTask{Part: p, Files: files[lo:hi]})
	}
	return split, nil
}

// warmSchemas forces the lazy Schema() caches throughout a (sub)plan before
// it is shared across worker goroutines.
func warmSchemas(n plan.Node) {
	n.Schema()
	for _, c := range n.Children() {
		warmSchemas(c)
	}
}

// pushableFragment reports whether subtree w can run per probe-partition in
// a worker: it must be a row-local pipeline (scans, filters, projections)
// containing at most one hash join. With no join, the fragment's single
// scan is the probe. With one join — allowed only when the caller can share
// one build side across workers — the probe is the single scan under the
// join's left input, and it must be at least as large as the build side's
// table so the partitioned scan is the dominant one.
func pushableFragment(w plan.Node, sharedJoin bool) (*plan.JoinNode, *plan.ScanNode, bool) {
	var join *plan.JoinNode
	ok := true
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if !ok {
			return
		}
		switch x := n.(type) {
		case *plan.ScanNode, *plan.FilterNode, *plan.ProjectNode:
		case *plan.JoinNode:
			if join != nil {
				ok = false
				return
			}
			join = x
		default:
			ok = false
			return
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(w)
	if !ok {
		return nil, nil, false
	}
	if join == nil {
		if scans := plan.Scans(w); len(scans) == 1 {
			return nil, scans[0], true
		}
		return nil, nil, false
	}
	if !sharedJoin {
		return nil, nil, false
	}
	probeScans := plan.Scans(join.Left)
	if len(probeScans) != 1 {
		return nil, nil, false
	}
	probe := probeScans[0]
	buildScans := plan.Scans(join.Right)
	if len(buildScans) != 1 {
		return nil, nil, false
	}
	if probe.Table.TotalBytes() < buildScans[0].Table.TotalBytes() {
		return nil, nil, false
	}
	return join, probe, true
}

// pushdownRoot descends through the coordinator-only operators (sort,
// limit, aggregation) to the largest subtree a worker could execute
// wholesale.
func pushdownRoot(n plan.Node) plan.Node {
	for {
		switch x := n.(type) {
		case *plan.SortNode:
			n = x.Child
		case *plan.LimitNode:
			n = x.Child
		case *plan.AggNode:
			n = x.Child
		default:
			return n
		}
	}
}

// topNShape matches root = Limit(Sort(frag)) — allowing the hidden-sort-key
// trim projection between the two — and returns the pieces, or nils.
// LIMIT+OFFSET combinations that would overflow the per-worker bound fall
// back to the ordinary split (the bound would be meaningless anyway).
func topNShape(root plan.Node) (*plan.LimitNode, *plan.SortNode, plan.Node) {
	lim, ok := root.(*plan.LimitNode)
	if !ok || lim.Limit < 0 || lim.Offset > math.MaxInt64-lim.Limit {
		return nil, nil, nil
	}
	child := lim.Child
	if p, ok := child.(*plan.ProjectNode); ok {
		child = p.Child
	}
	srt, ok := child.(*plan.SortNode)
	if !ok {
		return nil, nil, nil
	}
	return lim, srt, srt.Child
}

// analyze finds the unique AggNode (if any), the join count and agg count.
func analyze(node plan.Node) (*plan.AggNode, int, int) {
	var agg *plan.AggNode
	joins, aggs := 0, 0
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		switch x := n.(type) {
		case *plan.AggNode:
			agg = x
			aggs++
		case *plan.JoinNode:
			joins++
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(node)
	return agg, joins, aggs
}

func hasDistinctAgg(a *plan.AggNode) bool {
	for _, sp := range a.Aggs {
		if sp.Distinct {
			return true
		}
	}
	// A pure group-by-all node (DISTINCT) merges correctly (dedup of
	// dedups), so it does not disqualify.
	return false
}

// splitPartialAgg builds worker partial aggregation plus coordinator final
// aggregation. probe is the scan partitioned across workers; join, when
// non-nil, is the fragment's shared-build join below the aggregation.
func (e *Engine) splitPartialAgg(split *CFSplit, root plan.Node, agg *plan.AggNode, probe *plan.ScanNode, join *plan.JoinNode) error {
	split.Mode = SplitPartialAgg
	split.partScan = probe
	split.buildJoin = join

	ng := len(agg.GroupBy)
	var partial []plan.AggSpec
	// fromPartial[i] lists the partial-output positions feeding original
	// agg i (two entries for AVG: sum then count).
	fromPartial := make([][]int, len(agg.Aggs))
	for i, sp := range agg.Aggs {
		switch sp.Func {
		case plan.AggCountStar, plan.AggCount:
			fromPartial[i] = []int{len(partial)}
			partial = append(partial, sp) // output INT64 count
		case plan.AggSum, plan.AggMin, plan.AggMax:
			fromPartial[i] = []int{len(partial)}
			partial = append(partial, sp)
		case plan.AggAvg:
			sum := plan.AggSpec{Func: plan.AggSum, Arg: sp.Arg, Name: sp.Name + "_sum", Ty: sumType(sp.Arg.Type())}
			cnt := plan.AggSpec{Func: plan.AggCount, Arg: sp.Arg, Name: sp.Name + "_count", Ty: col.INT64}
			fromPartial[i] = []int{len(partial), len(partial) + 1}
			partial = append(partial, sum, cnt)
		default:
			return fmt.Errorf("engine: cannot split aggregate %s", sp)
		}
	}

	split.workerPlan = &plan.AggNode{
		Child:      agg.Child,
		GroupBy:    agg.GroupBy,
		GroupNames: agg.GroupNames,
		Aggs:       partial,
	}
	wSchema := split.workerPlan.Schema()

	// Synthetic scan over worker intermediates.
	split.interm = intermScan(split.QueryID, wSchema)

	// Final aggregation over the intermediates.
	finalAgg := &plan.AggNode{Child: split.interm}
	for i := 0; i < ng; i++ {
		f := wSchema.Fields[i]
		finalAgg.GroupBy = append(finalAgg.GroupBy, derived(i, f))
		finalAgg.GroupNames = append(finalAgg.GroupNames, f.Name)
	}
	for j, sp := range partial {
		f := wSchema.Fields[ng+j]
		arg := derived(ng+j, f)
		var fn plan.AggFunc
		switch sp.Func {
		case plan.AggCountStar, plan.AggCount, plan.AggSum:
			fn = plan.AggSum
		case plan.AggMin:
			fn = plan.AggMin
		case plan.AggMax:
			fn = plan.AggMax
		}
		finalAgg.Aggs = append(finalAgg.Aggs, plan.AggSpec{
			Func: fn, Arg: arg, Name: sp.Name, Ty: f.Type,
		})
	}
	fSchema := finalAgg.Schema()

	// Mapping projection reconstructing the original aggregate output.
	mapping := &plan.ProjectNode{Child: finalAgg}
	origSchema := agg.Schema()
	for i := 0; i < ng; i++ {
		mapping.Exprs = append(mapping.Exprs, derived(i, fSchema.Fields[i]))
		mapping.Names = append(mapping.Names, origSchema.Fields[i].Name)
	}
	for i, sp := range agg.Aggs {
		var ex plan.BoundExpr
		if sp.Func == plan.AggAvg {
			sumPos, cntPos := ng+fromPartial[i][0], ng+fromPartial[i][1]
			ex = &plan.BBinary{
				Op: "/",
				L:  derived(sumPos, fSchema.Fields[sumPos]),
				R:  derived(cntPos, fSchema.Fields[cntPos]),
				Ty: col.FLOAT64,
			}
		} else {
			// COUNT merged via SUM can yield NULL only if no partials
			// exist, which cannot happen (workers always emit).
			pos := ng + fromPartial[i][0]
			ex = derived(pos, fSchema.Fields[pos])
		}
		mapping.Exprs = append(mapping.Exprs, ex)
		mapping.Names = append(mapping.Names, origSchema.Fields[ng+i].Name)
	}

	split.mergePlan = replaceNode(root, agg, mapping)
	return nil
}

func sumType(t col.Type) col.Type {
	if t == col.FLOAT64 {
		return col.FLOAT64
	}
	return col.INT64
}

func derived(ordinal int, f col.Field) *plan.BCol {
	return &plan.BCol{
		Rel: plan.DerivedRel, Ordinal: ordinal,
		Name: f.Name, Ty: f.Type, Nullable: f.Nullable,
	}
}

// splitTopN replaces the plan's ORDER BY + LIMIT with a per-worker bounded
// top-N over the sort's input: each worker returns at most LIMIT+OFFSET
// rows (sorted), and the coordinator's merge re-sorts the k·N survivors and
// applies the limit and offset.
func (e *Engine) splitTopN(split *CFSplit, root plan.Node, lim *plan.LimitNode, srt *plan.SortNode, probe *plan.ScanNode, join *plan.JoinNode) {
	split.Mode = SplitTopN
	split.partScan = probe
	split.buildJoin = join
	topn := &plan.TopNNode{Child: srt.Child, Keys: srt.Keys, N: lim.Limit + lim.Offset}
	split.workerPlan = topn
	split.interm = intermScan(split.QueryID, topn.Schema())
	split.mergePlan = replaceNode(root, srt.Child, split.interm)
	// For the in-process path: worker outputs arrive pre-sorted, so the
	// coordinator can skip the SortNode entirely and k-way-merge instead.
	split.sortedMerge = replaceNode(root, srt, split.interm)
	split.mergeKeys = srt.Keys
}

// splitJoinProbe pushes a whole single-join pipeline into the workers: the
// probe side's files are partitioned, the coordinator prepares the shared
// build side once, and whatever sits above the fragment (sort, limit,
// non-splittable aggregation) merges the joined stream.
func (e *Engine) splitJoinProbe(split *CFSplit, root, frag plan.Node, probe *plan.ScanNode, join *plan.JoinNode) {
	split.Mode = SplitJoinProbe
	split.partScan = probe
	split.buildJoin = join
	split.workerPlan = frag
	split.interm = intermScan(split.QueryID, frag.Schema())
	split.mergePlan = replaceNode(root, frag, split.interm)
}

// splitScanPushdown pushes the largest scan into workers.
func (e *Engine) splitScanPushdown(split *CFSplit, root plan.Node, scans []*plan.ScanNode) {
	split.Mode = SplitScanPushdown
	largest := scans[0]
	for _, s := range scans[1:] {
		if s.Table.TotalBytes() > largest.Table.TotalBytes() {
			largest = s
		}
	}
	split.partScan = largest
	split.workerPlan = largest
	split.interm = intermScan(split.QueryID, largest.Schema())
	split.mergePlan = replaceNode(root, largest, split.interm)
}

// intermScan builds a synthetic scan node over worker output files.
func intermScan(queryID string, schema *col.Schema) *plan.ScanNode {
	t := &catalog.Table{Name: "_interm_" + queryID}
	for _, f := range schema.Fields {
		t.Columns = append(t.Columns, catalog.Column{Name: f.Name, Type: f.Type, Nullable: true})
	}
	return &plan.ScanNode{
		DB:      "_intermediate",
		Table:   t,
		Binding: t.Name,
		Rel:     0,
		Cols:    identity(schema.Len()),
	}
}

// replaceNode returns a copy of the tree with old swapped for repl. Nodes
// outside the root→old path are shared.
func replaceNode(n, old, repl plan.Node) plan.Node {
	if n == old {
		return repl
	}
	switch x := n.(type) {
	case *plan.ScanNode:
		return x
	case *plan.FilterNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.ProjectNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.JoinNode:
		cp := *x
		cp.Left = replaceNode(x.Left, old, repl)
		cp.Right = replaceNode(x.Right, old, repl)
		return &cp
	case *plan.AggNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.SortNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.TopNNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.LimitNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	default:
		panic(fmt.Sprintf("engine: replaceNode unknown node %T", n))
	}
}

// intermKey is the object key of one worker's intermediate output.
func intermKey(queryID string, part int) string {
	return fmt.Sprintf("_intermediate/%s/part-%05d.pxl", queryID, part)
}

// RunWorker executes one worker task: the fragment over the task's file
// partition, writing the result as an intermediate pixfile. It returns the
// intermediate's metadata plus the worker's scan statistics. Every failure
// path returns zero Stats — a failed worker is retried, and its partial
// bytes must not count toward the query's billing.
func (e *Engine) RunWorker(ctx context.Context, split *CFSplit, task int) (catalog.FileMeta, Stats, error) {
	if task < 0 || task >= len(split.Tasks) {
		return catalog.FileMeta{}, Stats{}, fmt.Errorf("engine: task %d out of range %d", task, len(split.Tasks))
	}
	if split.buildJoin != nil {
		// Each CF worker is its own process: it would have to rebuild the
		// join's build side, scanning that table once per task and
		// inflating the billed bytes. Only the in-process parallel VM path
		// (runSplitParallel) can honor a shared-build split.
		return catalog.FileMeta{}, Stats{}, fmt.Errorf("engine: shared-build join split cannot run as a CF worker")
	}
	return e.executeFragment(ctx, split.workerPlan, split.partScan, split.Tasks[task].Files, intermKey(split.QueryID, task))
}

// MergeResults runs the coordinator-side merge plan over the worker
// intermediates and cleans them up.
func (e *Engine) MergeResults(ctx context.Context, split *CFSplit, interms []catalog.FileMeta) (*Result, error) {
	stats := &Stats{}
	overrides := map[*plan.ScanNode]scanOverride{
		split.interm: {files: interms, interm: true},
	}
	op, err := exec.BuildWith(split.mergePlan, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, overrides, nil),
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, overrides, nil),
		Span:         obs.SpanFrom(ctx),
	})
	if err != nil {
		return nil, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	for _, m := range interms {
		_ = e.store.Delete(m.Key)
	}
	return resultFromBatch(split.mergePlan.Schema(), out, *stats), nil
}
