package engine

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/pixfile"
	"repro/internal/plan"
)

// SplitMode says how a plan was decomposed for CF execution.
type SplitMode uint8

// Split modes. PartialAgg pushes scan+filter+partial aggregation into the
// workers and merges on the coordinator (the common analytic case);
// ScanPushdown pushes scan+filter of the largest table and leaves joins
// and aggregation to the coordinator-side top-level plan — exactly the
// "push down the expensive operators into a sub-plan" flow of Sec. III-A.
const (
	SplitPartialAgg SplitMode = iota
	SplitScanPushdown
)

func (m SplitMode) String() string {
	if m == SplitPartialAgg {
		return "partial-agg"
	}
	return "scan-pushdown"
}

// WorkerTask is the unit of work one CF worker executes: the shared
// fragment plan over this task's file partition.
type WorkerTask struct {
	Part  int
	Files []catalog.FileMeta
}

// CFSplit is a plan decomposed into CF worker tasks plus a coordinator
// merge plan.
type CFSplit struct {
	Mode    SplitMode
	QueryID string
	Tasks   []WorkerTask

	workerPlan plan.Node      // fragment executed by each worker
	partScan   *plan.ScanNode // the partitioned scan inside workerPlan
	interm     *plan.ScanNode // synthetic scan over intermediates
	mergePlan  plan.Node
}

// WorkerSchema is the schema of worker intermediate files.
func (s *CFSplit) WorkerSchema() *col.Schema { return s.workerPlan.Schema() }

// SplitForCF decomposes a bound plan into `parts` CF worker tasks. It
// returns an error only on internal inconsistencies; any plan with at
// least one scannable file can be split.
func (e *Engine) SplitForCF(node plan.Node, queryID string, parts int) (*CFSplit, error) {
	if parts < 1 {
		parts = 1
	}
	split := &CFSplit{QueryID: queryID}

	agg, joins, aggCount := analyze(node)
	scans := plan.Scans(node)
	if len(scans) == 0 {
		return nil, fmt.Errorf("engine: plan has no scans to push down")
	}

	if agg != nil && aggCount == 1 && joins == 0 && !hasDistinctAgg(agg) && singleScanBelow(agg) != nil {
		if err := e.splitPartialAgg(split, node, agg); err != nil {
			return nil, err
		}
	} else {
		e.splitScanPushdown(split, node, scans)
	}

	// Partition the chosen scan's files.
	files := split.partScan.Table.Files
	if len(files) == 0 {
		return nil, fmt.Errorf("engine: table %s has no files", split.partScan.Table.Name)
	}
	if parts > len(files) {
		parts = len(files)
	}
	for p := 0; p < parts; p++ {
		var mine []catalog.FileMeta
		for i := p; i < len(files); i += parts {
			mine = append(mine, files[i])
		}
		split.Tasks = append(split.Tasks, WorkerTask{Part: p, Files: mine})
	}
	return split, nil
}

// analyze finds the unique AggNode (if any), the join count and agg count.
func analyze(node plan.Node) (*plan.AggNode, int, int) {
	var agg *plan.AggNode
	joins, aggs := 0, 0
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		switch x := n.(type) {
		case *plan.AggNode:
			agg = x
			aggs++
		case *plan.JoinNode:
			joins++
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(node)
	return agg, joins, aggs
}

func hasDistinctAgg(a *plan.AggNode) bool {
	for _, sp := range a.Aggs {
		if sp.Distinct {
			return true
		}
	}
	// A pure group-by-all node (DISTINCT) merges correctly (dedup of
	// dedups), so it does not disqualify.
	return false
}

// singleScanBelow returns the unique scan under the agg, or nil.
func singleScanBelow(a *plan.AggNode) *plan.ScanNode {
	scans := plan.Scans(a.Child)
	if len(scans) == 1 {
		return scans[0]
	}
	return nil
}

// splitPartialAgg builds worker partial aggregation plus coordinator final
// aggregation.
func (e *Engine) splitPartialAgg(split *CFSplit, root plan.Node, agg *plan.AggNode) error {
	split.Mode = SplitPartialAgg
	split.partScan = singleScanBelow(agg)

	ng := len(agg.GroupBy)
	var partial []plan.AggSpec
	// fromPartial[i] lists the partial-output positions feeding original
	// agg i (two entries for AVG: sum then count).
	fromPartial := make([][]int, len(agg.Aggs))
	for i, sp := range agg.Aggs {
		switch sp.Func {
		case plan.AggCountStar, plan.AggCount:
			fromPartial[i] = []int{len(partial)}
			partial = append(partial, sp) // output INT64 count
		case plan.AggSum, plan.AggMin, plan.AggMax:
			fromPartial[i] = []int{len(partial)}
			partial = append(partial, sp)
		case plan.AggAvg:
			sum := plan.AggSpec{Func: plan.AggSum, Arg: sp.Arg, Name: sp.Name + "_sum", Ty: sumType(sp.Arg.Type())}
			cnt := plan.AggSpec{Func: plan.AggCount, Arg: sp.Arg, Name: sp.Name + "_count", Ty: col.INT64}
			fromPartial[i] = []int{len(partial), len(partial) + 1}
			partial = append(partial, sum, cnt)
		default:
			return fmt.Errorf("engine: cannot split aggregate %s", sp)
		}
	}

	split.workerPlan = &plan.AggNode{
		Child:      agg.Child,
		GroupBy:    agg.GroupBy,
		GroupNames: agg.GroupNames,
		Aggs:       partial,
	}
	wSchema := split.workerPlan.Schema()

	// Synthetic scan over worker intermediates.
	split.interm = intermScan(split.QueryID, wSchema)

	// Final aggregation over the intermediates.
	finalAgg := &plan.AggNode{Child: split.interm}
	for i := 0; i < ng; i++ {
		f := wSchema.Fields[i]
		finalAgg.GroupBy = append(finalAgg.GroupBy, derived(i, f))
		finalAgg.GroupNames = append(finalAgg.GroupNames, f.Name)
	}
	for j, sp := range partial {
		f := wSchema.Fields[ng+j]
		arg := derived(ng+j, f)
		var fn plan.AggFunc
		switch sp.Func {
		case plan.AggCountStar, plan.AggCount, plan.AggSum:
			fn = plan.AggSum
		case plan.AggMin:
			fn = plan.AggMin
		case plan.AggMax:
			fn = plan.AggMax
		}
		finalAgg.Aggs = append(finalAgg.Aggs, plan.AggSpec{
			Func: fn, Arg: arg, Name: sp.Name, Ty: f.Type,
		})
	}
	fSchema := finalAgg.Schema()

	// Mapping projection reconstructing the original aggregate output.
	mapping := &plan.ProjectNode{Child: finalAgg}
	origSchema := agg.Schema()
	for i := 0; i < ng; i++ {
		mapping.Exprs = append(mapping.Exprs, derived(i, fSchema.Fields[i]))
		mapping.Names = append(mapping.Names, origSchema.Fields[i].Name)
	}
	for i, sp := range agg.Aggs {
		var ex plan.BoundExpr
		if sp.Func == plan.AggAvg {
			sumPos, cntPos := ng+fromPartial[i][0], ng+fromPartial[i][1]
			ex = &plan.BBinary{
				Op: "/",
				L:  derived(sumPos, fSchema.Fields[sumPos]),
				R:  derived(cntPos, fSchema.Fields[cntPos]),
				Ty: col.FLOAT64,
			}
		} else {
			// COUNT merged via SUM can yield NULL only if no partials
			// exist, which cannot happen (workers always emit).
			pos := ng + fromPartial[i][0]
			ex = derived(pos, fSchema.Fields[pos])
		}
		mapping.Exprs = append(mapping.Exprs, ex)
		mapping.Names = append(mapping.Names, origSchema.Fields[ng+i].Name)
	}

	split.mergePlan = replaceNode(root, agg, mapping)
	return nil
}

func sumType(t col.Type) col.Type {
	if t == col.FLOAT64 {
		return col.FLOAT64
	}
	return col.INT64
}

func derived(ordinal int, f col.Field) *plan.BCol {
	return &plan.BCol{
		Rel: plan.DerivedRel, Ordinal: ordinal,
		Name: f.Name, Ty: f.Type, Nullable: f.Nullable,
	}
}

// splitScanPushdown pushes the largest scan into workers.
func (e *Engine) splitScanPushdown(split *CFSplit, root plan.Node, scans []*plan.ScanNode) {
	split.Mode = SplitScanPushdown
	largest := scans[0]
	for _, s := range scans[1:] {
		if s.Table.TotalBytes() > largest.Table.TotalBytes() {
			largest = s
		}
	}
	split.partScan = largest
	split.workerPlan = largest
	split.interm = intermScan(split.QueryID, largest.Schema())
	split.mergePlan = replaceNode(root, largest, split.interm)
}

// intermScan builds a synthetic scan node over worker output files.
func intermScan(queryID string, schema *col.Schema) *plan.ScanNode {
	t := &catalog.Table{Name: "_interm_" + queryID}
	for _, f := range schema.Fields {
		t.Columns = append(t.Columns, catalog.Column{Name: f.Name, Type: f.Type, Nullable: true})
	}
	return &plan.ScanNode{
		DB:      "_intermediate",
		Table:   t,
		Binding: t.Name,
		Rel:     0,
		Cols:    identity(schema.Len()),
	}
}

// replaceNode returns a copy of the tree with old swapped for repl. Nodes
// outside the root→old path are shared.
func replaceNode(n, old, repl plan.Node) plan.Node {
	if n == old {
		return repl
	}
	switch x := n.(type) {
	case *plan.ScanNode:
		return x
	case *plan.FilterNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.ProjectNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.JoinNode:
		cp := *x
		cp.Left = replaceNode(x.Left, old, repl)
		cp.Right = replaceNode(x.Right, old, repl)
		return &cp
	case *plan.AggNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.SortNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	case *plan.LimitNode:
		cp := *x
		cp.Child = replaceNode(x.Child, old, repl)
		return &cp
	default:
		panic(fmt.Sprintf("engine: replaceNode unknown node %T", n))
	}
}

// intermKey is the object key of one worker's intermediate output.
func intermKey(queryID string, part int) string {
	return fmt.Sprintf("_intermediate/%s/part-%05d.pxl", queryID, part)
}

// RunWorker executes one worker task: the fragment over the task's file
// partition, writing the result as an intermediate pixfile. It returns the
// intermediate's metadata plus the worker's scan statistics.
func (e *Engine) RunWorker(ctx context.Context, split *CFSplit, task int) (catalog.FileMeta, Stats, error) {
	if task < 0 || task >= len(split.Tasks) {
		return catalog.FileMeta{}, Stats{}, fmt.Errorf("engine: task %d out of range %d", task, len(split.Tasks))
	}
	stats := &Stats{}
	overrides := map[*plan.ScanNode]scanOverride{
		split.partScan: {files: split.Tasks[task].Files},
	}
	op, err := exec.Build(split.workerPlan, e.scanFactory(ctx, stats, overrides))
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}

	w := pixfile.NewWriter(split.workerPlan.Schema(), pixfile.WriterOptions{})
	if err := w.Append(out); err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	data, err := w.Finish()
	if err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	key := intermKey(split.QueryID, task)
	if err := e.store.Put(key, data); err != nil {
		return catalog.FileMeta{}, Stats{}, err
	}
	return catalog.FileMeta{Key: key, Size: int64(len(data)), Rows: int64(out.N)}, *stats, nil
}

// MergeResults runs the coordinator-side merge plan over the worker
// intermediates and cleans them up.
func (e *Engine) MergeResults(ctx context.Context, split *CFSplit, interms []catalog.FileMeta) (*Result, error) {
	stats := &Stats{}
	overrides := map[*plan.ScanNode]scanOverride{
		split.interm: {files: interms, interm: true},
	}
	op, err := exec.Build(split.mergePlan, e.scanFactory(ctx, stats, overrides))
	if err != nil {
		return nil, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	for _, m := range interms {
		_ = e.store.Delete(m.Key)
	}
	return resultFromBatch(split.mergePlan.Schema(), out, *stats), nil
}
