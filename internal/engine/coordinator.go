package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	osexec "os/exec"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/plan"
)

// This file is the coordinator side of real multi-process CF execution: the
// plan is decomposed with the existing SplitForCF machinery, each task is
// serialized as a WorkerRequest and handed to a WorkerInvoker (a subprocess
// locally; the same seam fits a FaaS API), the workers exchange data through
// the object store as intermediate pixfiles, and the coordinator merges the
// intermediates through the normal scan path. Failed workers are retried
// with fresh attempt-numbered output keys, stragglers optionally get a
// speculative duplicate (Starling's duplicate-request mitigation), and only
// the winning attempt's stats count — billed bytes stay exactly what a
// serial run would bill.

// WorkerInvoker runs one worker attempt somewhere and returns its response.
// Implementations must be safe for concurrent use; the coordinator invokes
// every task (and speculative duplicates) in parallel. An attempt fails
// either by error or by a response carrying a non-empty Error; both are
// retried the same way.
type WorkerInvoker interface {
	Invoke(ctx context.Context, req *WorkerRequest) (*WorkerResponse, error)
}

// LocalInvoker executes worker requests in-process against an engine. The
// request still round-trips through the full wire format — the fragment is
// decoded from req.Plan, not shared by pointer — so everything except the
// process boundary itself is exercised. When Store is set, the request runs
// against a fresh engine over that store instead (letting tests interpose a
// FaultStore on the worker side only).
type LocalInvoker struct {
	Engine *Engine
	Store  objstore.Store
}

// Invoke implements WorkerInvoker.
func (l *LocalInvoker) Invoke(ctx context.Context, req *WorkerRequest) (*WorkerResponse, error) {
	e := l.Engine
	if l.Store != nil {
		e = New(catalog.New(), l.Store)
		e.SetVectorized(l.Engine.Vectorized())
	}
	return e.ExecuteWorkerRequest(ctx, req), nil
}

// ProcessInvoker runs each worker attempt as a separate OS process speaking
// JSON over stdin/stdout — the local stand-in for a cloud-function
// invocation. Workers open their own store at StoreDir, so the coordinator
// must run over a disk store rooted there.
type ProcessInvoker struct {
	// Argv is the worker command. Tests pass their own test binary
	// (os.Args[0]) with an environment marker that routes main to
	// WorkerMain; production passes the pixels-worker binary.
	Argv []string
	// Env entries are appended to the inherited environment.
	Env []string
	// StoreDir is stamped into every request's StoreDir.
	StoreDir string
	// Fault, when set, is stamped into every request so workers wrap their
	// store in a FaultStore. FaultFor takes precedence when both are set,
	// letting a harness inject faults into chosen attempts only (e.g. only
	// attempt 0, so recovery is guaranteed yet provably exercised).
	Fault    *objstore.FaultConfig
	FaultFor func(req *WorkerRequest) *objstore.FaultConfig

	live atomic.Int64
}

// LiveProcesses reports worker processes currently running. Teardown tests
// assert it drains to zero after cancellation.
func (p *ProcessInvoker) LiveProcesses() int64 { return p.live.Load() }

// Invoke implements WorkerInvoker.
func (p *ProcessInvoker) Invoke(ctx context.Context, req *WorkerRequest) (*WorkerResponse, error) {
	if len(p.Argv) == 0 {
		return nil, fmt.Errorf("engine: ProcessInvoker has no command")
	}
	r := *req
	r.StoreDir = p.StoreDir
	if p.FaultFor != nil {
		r.Fault = p.FaultFor(&r)
	} else if p.Fault != nil {
		r.Fault = p.Fault
	}
	payload, err := json.Marshal(&r)
	if err != nil {
		return nil, err
	}
	cmd := osexec.CommandContext(ctx, p.Argv[0], p.Argv[1:]...)
	cmd.Env = append(os.Environ(), p.Env...)
	cmd.Stdin = bytes.NewReader(payload)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr

	p.live.Add(1)
	runErr := cmd.Run() // CommandContext kills the process on ctx cancel
	p.live.Add(-1)

	var resp WorkerResponse
	if err := json.Unmarshal(stdout.Bytes(), &resp); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if runErr != nil {
			return nil, fmt.Errorf("engine: worker process: %w (stderr: %s)", runErr, bytes.TrimSpace(stderr.Bytes()))
		}
		return nil, fmt.Errorf("engine: bad worker response: %w", err)
	}
	if resp.Error == "" && runErr != nil {
		resp.Error = runErr.Error()
	}
	return &resp, nil
}

// DistOptions configure a distributed run.
type DistOptions struct {
	// Parts is the worker count; <1 means one per CPU. Clamped to the
	// partitioned table's file count by the splitter.
	Parts int
	// Invoker runs worker attempts; nil means in-process LocalInvoker.
	Invoker WorkerInvoker
	// Retries is the extra attempts a failed task gets before the query
	// fails. Each retry writes to a fresh attempt-numbered key.
	Retries int
	// SpeculativeAfter, when positive, launches a duplicate attempt for any
	// task still running after this duration; the first attempt to finish
	// wins and the loser is cancelled. 0 disables speculation.
	SpeculativeAfter time.Duration
}

// distLive counts live coordinator goroutines (per-task supervisors and
// per-attempt invokers). Leak tests assert it drains to zero.
var distLive atomic.Int64

// DistributedGoroutines reports coordinator goroutines currently live. It
// exists for leak tests, mirroring PipelineGoroutines.
func DistributedGoroutines() int64 { return distLive.Load() }

// RunPlanDistributed executes a plan through the multi-process CF path:
// split, invoke one worker per task, merge the intermediate pixfiles the
// workers wrote to the object store. Plans that cannot be decomposed fall
// back to the serial RunPlan. Results, stats and billed bytes match the
// serial execution of the same plan (plus the BytesIntermediate /
// RowsScanned the intermediate exchange itself adds, exactly as the
// in-process CF path adds them).
func (e *Engine) RunPlanDistributed(ctx context.Context, node plan.Node, queryID string, opts DistOptions) (*Result, error) {
	if opts.Invoker == nil {
		opts.Invoker = &LocalInvoker{Engine: e}
	}
	parts := opts.Parts
	if parts < 1 {
		parts = DefaultParallelism(0)
	}
	// TopN on, SharedJoinBuild off: worker top-N writes bounded sorted
	// intermediates (merged k-way below), while shared-build joins cannot
	// cross a process boundary without re-billing the build side.
	split, err := e.SplitForCFOpts(node, queryID, parts, SplitOptions{TopN: true})
	if err != nil {
		return e.RunPlan(ctx, node)
	}
	return e.runSplitDistributed(ctx, split, opts)
}

// runSplitDistributed drives one split through the invoker and merges.
func (e *Engine) runSplitDistributed(ctx context.Context, split *CFSplit, opts DistOptions) (*Result, error) {
	ctx, dspan := obs.StartSpan(ctx, "exec:distributed")
	defer dspan.End()
	dspan.SetAttr("parts", len(split.Tasks))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(split.Tasks)
	resps := make([]*WorkerResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		distLive.Add(1)
		go func(task int) {
			defer wg.Done()
			defer distLive.Add(-1)
			tspan := dspan.StartChild(fmt.Sprintf("task:%d", task))
			resps[task], errs[task] = e.runTaskAttempts(obs.ContextWithSpan(wctx, tspan), split, task, opts)
			tspan.End()
			if errs[task] != nil {
				cancel() // abort sibling tasks
			}
		}(i)
	}
	wg.Wait()

	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
			continue
		}
		// A task cancelled by a sibling's failure surfaces
		// context.Canceled; prefer the root cause.
		if errors.Is(firstErr, context.Canceled) && ctx.Err() == nil && !errors.Is(err, context.Canceled) {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Failed queries still sweep whatever attempts managed to write.
		_, _ = objstore.DeletePrefix(e.store, objstore.IntermediatePrefix(split.QueryID))
		return nil, firstErr
	}

	// Winner-only accounting: exactly one response per task survives, so a
	// retried or duplicated task contributes one attempt's bytes — the same
	// bytes a fault-free run would bill.
	var workerStats Stats
	interms := make([]catalog.FileMeta, n)
	for i, r := range resps {
		interms[i] = r.Interm
		workerStats.Add(r.Stats)
	}
	return e.mergeDistributed(ctx, split, interms, workerStats)
}

// runTaskAttempts supervises one task: first attempt, retries on failure,
// and an optional speculative duplicate for stragglers. The first
// successful attempt wins; remaining in-flight attempts are cancelled on
// return. Exactly one attempt's response is returned, so its stats are
// counted once no matter how many attempts ran.
func (e *Engine) runTaskAttempts(ctx context.Context, split *CFSplit, task int, opts DistOptions) (*WorkerResponse, error) {
	tctx, cancel := context.WithCancel(ctx)
	defer cancel() // tears down the loser of a speculative race
	tspan := obs.SpanFrom(ctx)

	type attemptResult struct {
		resp *WorkerResponse
		err  error
		span *obs.Span
	}
	// Buffered for the worst case (all retries plus the speculative
	// duplicate), so late finishers never block after we've returned.
	ch := make(chan attemptResult, opts.Retries+2)
	attempts := 0
	launch := func() error {
		req, err := NewWorkerRequest(split, task, attempts)
		if err != nil {
			return err
		}
		req.Interpreted = e.interp
		req.Trace = tspan != nil
		attempts++
		distLive.Add(1)
		// Attempt spans start detached: only attempts that report back are
		// attached to the task span, so a cancelled straggler's span can
		// never dangle open past its parent.
		aspan := tspan.Detached(fmt.Sprintf("attempt:%d", req.Attempt))
		go func() {
			defer distLive.Add(-1)
			resp, err := opts.Invoker.Invoke(tctx, req)
			if err == nil && resp.Error != "" {
				err = fmt.Errorf("engine: worker %d attempt %d: %s", req.Task, req.Attempt, resp.Error)
			}
			if err != nil {
				aspan.SetAttr("error", err.Error())
			}
			aspan.End()
			ch <- attemptResult{resp, err, aspan}
		}()
		return nil
	}
	if err := launch(); err != nil {
		return nil, err
	}
	var speculate <-chan time.Time
	if opts.SpeculativeAfter > 0 {
		speculate = time.After(opts.SpeculativeAfter)
	}

	outstanding := 1
	budget := opts.Retries
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-speculate:
			speculate = nil
			// Duplicate the straggler; does not consume retry budget.
			if err := launch(); err == nil {
				outstanding++
				obs.DistTaskSpeculativeTotal.Inc()
				tspan.Event("speculate", map[string]any{"attempt": attempts - 1})
			}
		case r := <-ch:
			outstanding--
			tspan.Attach(r.span)
			if r.err == nil {
				// Winner: its fragment spans (possibly shipped across a
				// process boundary) graft under the winning attempt.
				r.span.Adopt(r.resp.Spans)
				r.resp.Spans = nil
				return r.resp, nil
			}
			lastErr = r.err
			if budget > 0 && ctx.Err() == nil {
				budget--
				obs.DistTaskRetriesTotal.Inc()
				tspan.Event("retry", map[string]any{
					"attempt": attempts,
					"error":   r.err.Error(),
				})
				if err := launch(); err != nil {
					return nil, err
				}
				outstanding++
			} else if outstanding == 0 {
				// Retry budget exhausted: every attempt's intermediate key
				// is about to be swept by the caller's DeletePrefix — name
				// them in the error and the trace instead of failing
				// silently with only the last attempt's message.
				swept := make([]string, attempts)
				for a := range swept {
					swept[a] = intermAttemptKey(split.QueryID, task, a)
				}
				obs.DistTaskSweptKeysTotal.Add(int64(len(swept)))
				tspan.Event("retries-exhausted", map[string]any{
					"attempts":   attempts,
					"swept_keys": swept,
				})
				return nil, fmt.Errorf("engine: task %d failed after %d attempt(s), sweeping intermediates %v: %w",
					task, attempts, swept, lastErr)
			}
		}
	}
}

// mergeDistributed merges worker intermediates into the final result and
// sweeps the query's whole intermediate prefix — including orphans written
// by failed or duplicated attempts that never made it into interms.
func (e *Engine) mergeDistributed(ctx context.Context, split *CFSplit, interms []catalog.FileMeta, workerStats Stats) (*Result, error) {
	defer func() {
		_, _ = objstore.DeletePrefix(e.store, objstore.IntermediatePrefix(split.QueryID))
	}()
	ctx, mspan := obs.StartSpan(ctx, "merge")
	defer mspan.End()

	stats := &Stats{}
	mergePlan := split.mergePlan
	var overrides map[*plan.ScanNode]scanOverride
	if split.Mode == SplitTopN && split.sortedMerge != nil {
		// Worker intermediates arrive sorted under mergeKeys, so stream all
		// k files through a heap merge instead of re-sorting k·N rows on the
		// coordinator — the pipelined-shuffle-read shape. Each file gets its
		// own lazy reader; MergeSorted pulls them from one goroutine, so the
		// shared stats need no synchronization.
		mergePlan = split.sortedMerge
		streams := make([]exec.BatchIterator, len(interms))
		for i, m := range interms {
			sc := e.newScanContext(ctx, split.interm, []catalog.FileMeta{m}, stats, true)
			streams[i] = sc.sequential()
		}
		iter := exec.MergeSorted(streams, split.mergeKeys, split.workerPlan.Schema())
		overrides = map[*plan.ScanNode]scanOverride{split.interm: {iter: iter}}
	} else {
		overrides = map[*plan.ScanNode]scanOverride{
			split.interm: {files: interms, interm: true},
		}
	}
	op, err := exec.BuildWith(mergePlan, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, overrides, nil),
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, overrides, nil),
		Span:         mspan,
	})
	if err != nil {
		return nil, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	stats.Add(workerStats)
	return resultFromBatch(mergePlan.Schema(), out, *stats), nil
}
