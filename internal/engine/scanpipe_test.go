package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/objstore/cache"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

// newFilteredScanEngine loads two tables tuned for late-materialization
// tests, split across `files` pixfiles with `groups` row groups of
// `rowGroup` rows each:
//
//   - wide(k BIGINT, v DOUBLE, s VARCHAR, t VARCHAR): no NULLs, k
//     sequential so modulo predicates select whole row groups.
//   - nulls(n_key BIGINT, n_val DOUBLE, n_tag VARCHAR): n_val is NULL on
//     ~70% of rows, n_tag on every third row.
func newFilteredScanEngine(tb testing.TB, store objstore.Store, files, groups, rowGroup int) *Engine {
	tb.Helper()
	e := New(catalog.New(), store)
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE wide (k BIGINT NOT NULL, v DOUBLE NOT NULL, s VARCHAR NOT NULL, t VARCHAR NOT NULL)",
		"CREATE TABLE nulls (n_key BIGINT NOT NULL, n_val DOUBLE, n_tag VARCHAR)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			tb.Fatal(err)
		}
	}
	rowsPerFile := groups * rowGroup
	words := []string{"ash", "birch", "cedar", "fir", "oak"}
	for f := 0; f < files; f++ {
		k := col.NewVector(col.INT64, rowsPerFile)
		v := col.NewVector(col.FLOAT64, rowsPerFile)
		s := col.NewVector(col.STRING, rowsPerFile)
		t := col.NewVector(col.STRING, rowsPerFile)
		nk := col.NewVector(col.INT64, rowsPerFile)
		nv := col.NewVector(col.FLOAT64, rowsPerFile)
		nt := col.NewVector(col.STRING, rowsPerFile)
		for r := 0; r < rowsPerFile; r++ {
			i := f*rowsPerFile + r
			k.Ints[r] = int64(i)
			v.Floats[r] = float64(i % 997)
			s.Strs[r] = words[i%len(words)]
			t.Strs[r] = fmt.Sprintf("row-%07d", i)
			nk.Ints[r] = int64(i)
			if i%10 < 7 {
				nv.SetNull(r)
			} else {
				nv.Floats[r] = float64(i % 512)
			}
			if i%3 == 0 {
				nt.SetNull(r)
			} else {
				nt.Strs[r] = words[i%len(words)]
			}
		}
		opts := pixfile.WriterOptions{RowGroupSize: rowGroup}
		if err := e.LoadBatch("db", "wide", col.NewBatch(k, v, s, t), opts); err != nil {
			tb.Fatal(err)
		}
		if err := e.LoadBatch("db", "nulls", col.NewBatch(nk, nv, nt), opts); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

// filteredScanQueries exercise the late-materializing scan: clustered
// zero-match row groups (modulo predicates zone maps cannot extract),
// all-match groups, partial matches, and NULL-heavy predicate columns.
var filteredScanQueries = []string{
	// Whole row groups miss: every 4th group matches (k sequential, 512
	// rows per group), payload chunks of the rest are skipped.
	"SELECT COUNT(*), SUM(v), MIN(s), MAX(t) FROM wide WHERE k % 2048 < 512",
	// All-match: the filter passes every row of every group.
	"SELECT COUNT(*), SUM(v) FROM wide WHERE k % 2048 >= 0",
	// Partial match inside every group.
	"SELECT COUNT(*), SUM(v), MIN(t) FROM wide WHERE v > 500",
	// Multi-column predicate: both k and v decode before s/t.
	"SELECT COUNT(*), MIN(s) FROM wide WHERE k % 1024 < 256 AND v > 100",
	// NULL-heavy predicate column: NULL comparisons drop rows.
	"SELECT COUNT(*), SUM(n_val) FROM nulls WHERE n_val > 100",
	// IS NULL on the mostly-NULL column.
	"SELECT COUNT(*) FROM nulls WHERE n_val IS NULL AND n_key % 512 < 128",
	// Filter on a nullable string column.
	"SELECT COUNT(*), MIN(n_tag) FROM nulls WHERE n_tag = 'cedar'",
	// Constant-false-per-group shape: zero rows anywhere.
	"SELECT COUNT(*), SUM(v) FROM wide WHERE k < 0",
	// Row-level results (not aggregates) from a clustered filter.
	"SELECT k, v, s FROM wide WHERE k % 4096 < 64 ORDER BY k",
}

// TestFilteredScanParallelMatchesSerial asserts result and full stats
// equality (rows, billed bytes, skipped chunks, filtered rows) between
// serial and parallel execution at widths 1, 2 and 8. Run with -race: the
// pipeline's producer/worker/consumer goroutines all run under every
// width.
func TestFilteredScanParallelMatchesSerial(t *testing.T) {
	e := newFilteredScanEngine(t, objstore.NewMemory(), 8, 4, 512)
	for _, width := range []int{1, 2, 8} {
		for _, q := range filteredScanQueries {
			serial, par := runBoth(t, e, q, width)
			expectIdentical(t, fmt.Sprintf("%s @%d", q, width), serial, par)
		}
	}
}

// TestFilteredScanSynchronousMatchesPipelined asserts the pipelined scan
// is an exact drop-in for the synchronous one: same rows, same stats,
// same billed bytes.
func TestFilteredScanSynchronousMatchesPipelined(t *testing.T) {
	sync := newFilteredScanEngine(t, objstore.NewMemory(), 4, 4, 512)
	sync.SetScanPrefetch(-1) // force every scan synchronous
	piped := newFilteredScanEngine(t, objstore.NewMemory(), 4, 4, 512)
	piped.SetScanPrefetch(8)
	for _, q := range filteredScanQueries {
		s, _ := runBoth(t, sync, q, 1)
		p, _ := runBoth(t, piped, q, 1)
		expectIdentical(t, q+" (sync vs pipelined)", s, p)
	}
}

// TestLateMaterializationSkipsChunks pins the exact accounting of the
// zero-match path: 2 files × 4 groups of 1024 rows, a modulo filter that
// selects exactly the first group of each file, and a 3-column projection
// whose predicate column is k. The 6 zero-match groups must skip their 2
// payload chunks each and shrink billed bytes accordingly.
func TestLateMaterializationSkipsChunks(t *testing.T) {
	e := newFilteredScanEngine(t, objstore.NewMemory(), 2, 4, 1024)
	ctx := context.Background()

	run := func(q string) *Result {
		t.Helper()
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		node, err := e.PlanQuery("db", stmt.(*sql.Select))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunPlan(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	filtered := run("SELECT COUNT(*), SUM(v), MIN(s) FROM wide WHERE k % 4096 < 1024")
	unfiltered := run("SELECT COUNT(*), SUM(v), MIN(s), MAX(k) FROM wide")

	if got := filtered.Rows[0][0].I; got != 2048 {
		t.Fatalf("filtered count = %d, want 2048", got)
	}
	// 6 zero-match groups × 2 skipped payload chunks (v, s).
	if filtered.Stats.ColumnChunksSkipped != 12 {
		t.Fatalf("ColumnChunksSkipped = %d, want 12", filtered.Stats.ColumnChunksSkipped)
	}
	if filtered.Stats.RowsFiltered != 6*1024 {
		t.Fatalf("RowsFiltered = %d, want %d", filtered.Stats.RowsFiltered, 6*1024)
	}
	if filtered.Stats.RowsScanned != 8*1024 || filtered.Stats.RowGroupsRead != 8 {
		t.Fatalf("scan stats = %+v, want all 8 groups read", filtered.Stats)
	}
	if filtered.Stats.BytesScanned >= unfiltered.Stats.BytesScanned {
		t.Fatalf("filtered scan billed %d bytes, not less than unfiltered %d",
			filtered.Stats.BytesScanned, unfiltered.Stats.BytesScanned)
	}

	// The all-match query reads every chunk: nothing skipped, nothing
	// filtered, same billed bytes as serial execution of the same shape.
	all := run("SELECT COUNT(*), SUM(v), MIN(s) FROM wide WHERE k % 4096 >= 0")
	if all.Stats.ColumnChunksSkipped != 0 || all.Stats.RowsFiltered != 0 {
		t.Fatalf("all-match scan skipped/filtered: %+v", all.Stats)
	}
	if all.Stats.BytesScanned != filtered.Stats.BytesScanned+unusedChunkBytes(t, e, 12) {
		// The two queries project identical columns; the only difference
		// is the 12 skipped chunks.
		t.Fatalf("all-match billed %d, filtered %d + 12 chunks %d",
			all.Stats.BytesScanned, filtered.Stats.BytesScanned, unusedChunkBytes(t, e, 12))
	}
}

// unusedChunkBytes sums the sizes of the v and s chunks of the 6 groups
// the filtered query skipped (groups 1..3 of each of the 2 files).
func unusedChunkBytes(t *testing.T, e *Engine, want int) int64 {
	t.Helper()
	tab := mustTable(t, e, "wide")
	var total int64
	counted := 0
	for _, fm := range tab.Files {
		data, err := e.Store().Get(fm.Key)
		if err != nil {
			t.Fatal(err)
		}
		f, err := pixfile.OpenBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		for g := 1; g < f.NumRowGroups(); g++ {
			rg := f.RowGroup(g)
			total += rg.Chunks[1].Length + rg.Chunks[2].Length // v, s
			counted += 2
		}
	}
	if counted != want {
		t.Fatalf("counted %d skipped chunks, want %d", counted, want)
	}
	return total
}

// gateStore wraps a store and, after `after` ranged reads, signals and
// then blocks every read until released — freezing a scan pipeline in
// mid-flight.
type gateStore struct {
	objstore.Store
	reads   atomic.Int64
	after   int64
	gate    chan struct{}
	started chan struct{}
	once    atomic.Bool
}

func (g *gateStore) GetRange(key string, off, length int64) ([]byte, error) {
	if g.reads.Add(1) > g.after {
		if g.once.CompareAndSwap(false, true) {
			close(g.started)
		}
		<-g.gate
	}
	return g.Store.GetRange(key, off, length)
}

// TestPipelineCancellationNoGoroutineLeak cancels a query while its scan
// pipeline is blocked mid-fetch and asserts (a) the query surfaces the
// cancellation and (b) every pipeline goroutine exits — counted by the
// package's live-goroutine counter.
func TestPipelineCancellationNoGoroutineLeak(t *testing.T) {
	// Earlier tests' pipelines may still be unwinding (their queries have
	// returned; the cancel is propagating) — wait for quiescence first.
	for start := time.Now(); PipelineGoroutines() != 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("pipeline goroutines alive before test: %d", PipelineGoroutines())
		}
		time.Sleep(time.Millisecond)
	}
	gs := &gateStore{
		Store:   objstore.NewMemory(),
		after:   24, // past the footers, inside chunk reads
		gate:    make(chan struct{}),
		started: make(chan struct{}),
	}
	e := newFilteredScanEngine(t, gs, 8, 4, 512)
	gs.reads.Store(0) // loading consumed no reads, but be explicit

	ctx, cancel := context.WithCancel(context.Background())
	stmt, _ := sql.Parse("SELECT COUNT(*), SUM(v), MIN(s) FROM wide WHERE k % 2048 < 512")
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e.RunPlan(ctx, node)
		errc <- err
	}()

	select {
	case <-gs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline never reached the blocked fetch")
	}
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("canceled query returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return")
	}
	close(gs.gate) // release fetches still parked in the store

	deadline := time.Now().Add(5 * time.Second)
	for PipelineGoroutines() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline goroutines leaked: %d alive", PipelineGoroutines())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParsedFooterCacheReopen asserts the decoded-footer cache serves
// reopens (no store requests, no re-parse) while billing footer bytes
// identically to a cold open.
func TestParsedFooterCacheReopen(t *testing.T) {
	met := objstore.NewMetered(objstore.NewMemory())
	cs := cache.New(met, cache.Config{})
	met.AttachCache(cs)
	e := newFilteredScanEngine(t, cs, 4, 4, 512)
	ctx := context.Background()

	run := func() *Result {
		t.Helper()
		stmt, _ := sql.Parse("SELECT COUNT(*), SUM(v) FROM wide WHERE k % 2048 < 512")
		node, err := e.PlanQuery("db", stmt.(*sql.Select))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.RunPlan(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run()
	s1 := cs.Stats()
	second := run()
	s2 := cs.Stats()

	if s2.ParsedFooterHits <= s1.ParsedFooterHits {
		t.Fatalf("reopen did not hit the parsed-footer cache: %d -> %d",
			s1.ParsedFooterHits, s2.ParsedFooterHits)
	}
	if first.Stats.BytesScanned != second.Stats.BytesScanned {
		t.Fatalf("parsed-footer cache changed billed bytes: %d vs %d",
			first.Stats.BytesScanned, second.Stats.BytesScanned)
	}
	if len(first.Rows) != len(second.Rows) || !first.Rows[0][0].Equal(second.Rows[0][0]) {
		t.Fatalf("reopened query diverged: %v vs %v", first.Rows, second.Rows)
	}

	// A rewrite through the store must drop the cached footer (the engine
	// would otherwise decode new chunks against a stale index).
	tab := mustTable(t, e, "wide")
	key := tab.Files[0].Key
	data, err := e.Store().Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Store().Put(key, data); err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.ParsedFooter(key, int64(len(data))); ok {
		t.Fatal("Put did not invalidate the parsed footer")
	}
}
