package engine

import (
	"context"
	"strings"

	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/vec"
)

// fusedAggScan builds the hook exec.BuildWith consults when a group-free
// AggNode sits directly on a ScanNode: instead of scan → batches →
// HashAggOp, a single fused operator folds rows into typed accumulators as
// chunks decode. On the synchronous path nothing is materialized at all —
// payload chunks decode into reusable scratch and fold at the surviving
// positions, so no survivor gather, no batch assembly, no per-row Value
// boxing and no group table. Rows, stats and billed bytes are identical to
// the unfused tree by construction; SetVectorized(false) or the fusedOff
// ablation knob disable it.
func (e *Engine) fusedAggScan(ctx context.Context, stats *Stats, overrides map[*plan.ScanNode]scanOverride, pipelined map[*plan.ScanNode]bool) func(*plan.AggNode, *plan.ScanNode) (exec.Operator, bool) {
	return func(agg *plan.AggNode, scan *plan.ScanNode) (exec.Operator, bool) {
		if e.interp || e.fusedOff || !fusableAgg(agg, scan) {
			return nil, false
		}
		files := scan.Table.Files
		interm := false
		if ov, ok := overrides[scan]; ok {
			if ov.iter != nil {
				// Batches come from an in-process stream, not files — there
				// is no decode to fuse into.
				return nil, false
			}
			files = ov.files
			interm = ov.interm
		}
		sc := e.newScanContext(ctx, scan, files, stats, interm)
		depth := 0
		if !interm && pipelined[scan] && e.prefetch > 0 {
			depth = e.prefetch
		}
		return &fusedAggOp{node: agg, sc: sc, depth: depth}, true
	}
}

// fusableAgg reports whether every aggregate of a group-free AggNode is a
// plain COUNT/SUM/MIN/MAX/AVG over a bare scan column (or COUNT(*)) —
// the shapes the typed fold kernels cover. Anything else (groups,
// DISTINCT, expression arguments, MIN/MAX over BOOL) falls back to
// HashAggOp.
func fusableAgg(agg *plan.AggNode, scan *plan.ScanNode) bool {
	if len(agg.GroupBy) != 0 {
		return false
	}
	for i := range agg.Aggs {
		s := &agg.Aggs[i]
		if s.Distinct {
			return false
		}
		switch s.Func {
		case plan.AggCountStar:
			continue
		case plan.AggCount, plan.AggSum, plan.AggAvg, plan.AggMin, plan.AggMax:
		default:
			return false
		}
		c, ok := s.Arg.(*plan.BCol)
		if !ok || c.Ordinal < 0 || c.Ordinal >= len(scan.Cols) {
			return false
		}
		switch s.Func {
		case plan.AggSum, plan.AggAvg:
			if c.Ty != col.INT64 && c.Ty != col.FLOAT64 {
				return false
			}
		case plan.AggMin, plan.AggMax:
			switch c.Ty {
			case col.INT64, col.FLOAT64, col.DATE, col.TIMESTAMP, col.STRING:
			default:
				return false
			}
		}
	}
	return true
}

// fusedAggOp is the fused scan+aggregate operator. Open drains the scan —
// folding during decode on the synchronous path, or folding the prefetch
// pipeline's already-filtered batches when the scan qualifies for
// overlapped decode — and Next emits the single result row.
type fusedAggOp struct {
	node  *plan.AggNode
	sc    *scanContext
	depth int // >0: fold over the prefetch pipeline's batches

	out  *col.Batch
	done bool
}

// Schema implements exec.Operator.
func (o *fusedAggOp) Schema() *col.Schema { return o.node.Schema() }

// Open implements exec.Operator: it runs the whole fused scan.
func (o *fusedAggOp) Open() error {
	fold := newAggFold(o.node)
	if o.depth > 0 {
		// Overlapped I/O and decode: the scan pipeline delivers compacted
		// batches in row-group order to this goroutine, which folds them
		// columnar — same fold order as the synchronous path, so float sums
		// are bit-identical, and still no HashAggOp.
		iter := o.sc.pipelined(o.depth)
		for {
			b, err := iter()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			fold.fold(b.Vecs, nil, fold.identity(b.N))
		}
	} else {
		dec := newFoldDecoder(o.sc)
		for _, meta := range o.sc.files {
			if err := o.sc.ctx.Err(); err != nil {
				return err
			}
			f, err := o.sc.openPixfile(meta, o.sc.stats)
			if err != nil {
				return err
			}
			for g := 0; g < f.NumRowGroups(); g++ {
				if len(o.sc.node.ZonePreds) > 0 && f.PruneRowGroup(g, o.sc.node.ZonePreds) {
					o.sc.stats.RowGroupsPruned++
					continue
				}
				if err := dec.decodeFold(f, meta.Key, g, o.sc.stats, fold); err != nil {
					return err
				}
			}
		}
	}
	o.out = fold.result(o.node)
	return nil
}

// Next implements exec.Operator.
func (o *fusedAggOp) Next() (*col.Batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	return o.out, nil
}

// Close implements exec.Operator.
func (o *fusedAggOp) Close() error {
	o.out = nil
	return nil
}

// newFoldDecoder is newRGDecoder with scratch guaranteed, since the fold
// path reuses chunk scratch even for filterless scans.
func newFoldDecoder(sc *scanContext) *rgDecoder {
	d := newRGDecoder(sc)
	if d.scratch == nil {
		d.scratch = make([]*pixfile.ChunkScratch, len(sc.node.Cols))
		for i := range d.scratch {
			d.scratch[i] = &pixfile.ChunkScratch{}
		}
	}
	return d
}

// decodeFold is decode()'s fused twin: same chunk fetches (same billed
// bytes), same filter evaluation, same stats — but surviving rows fold
// straight into the aggregate accumulators instead of materializing a
// batch. Nothing decoded here escapes the decoder, so chunk scratch is
// never detached and steady-state row groups decode with zero allocation.
func (d *rgDecoder) decodeFold(f *pixfile.File, key string, g int, st *Stats, fold *aggFold) error {
	if err := d.sc.ctx.Err(); err != nil {
		return err
	}
	sc := d.sc
	cols := sc.node.Cols
	fetch := sc.chunkFetcher(key, st)
	n := f.RowGroup(g).NumRows

	if sc.node.Filter == nil {
		vecs := make([]*col.Vector, len(cols))
		for i, c := range cols {
			v, err := f.ReadColumnChunkVia(fetch, g, c, d.scratch[i])
			if err != nil {
				return err
			}
			vecs[i] = v
		}
		st.RowsScanned += int64(n)
		st.RowGroupsRead++
		fold.fold(vecs, nil, fold.identity(n))
		return nil
	}

	vecs, dicts, sel, err := d.filterRowGroup(f, fetch, g, n)
	if err != nil {
		return err
	}
	st.RowsScanned += int64(n)
	st.RowGroupsRead++
	st.RowsFiltered += int64(n - len(sel))
	if len(sel) == 0 {
		st.ColumnChunksSkipped += int64(len(sc.restPos))
		return nil
	}
	for _, pos := range sc.restPos {
		v, err := f.ReadColumnChunkVia(fetch, g, cols[pos], d.scratch[pos])
		if err != nil {
			return err
		}
		vecs[pos] = v
	}
	fold.fold(vecs, dicts, sel)
	return nil
}

// aggFold holds the typed accumulators of one fused aggregation. Fold
// order is row-group order on a single goroutine everywhere the operator
// runs, so float accumulation is bit-identical across serial, pipelined,
// parallel-worker and distributed-worker execution.
type aggFold struct {
	specs  []plan.AggSpec
	argPos []int // batch position per spec; -1 for COUNT(*)
	states []fusedState
	all    []int // reusable identity selection
}

// fusedState mirrors exec's aggState for the fused subset: COUNT counts
// non-null inputs (COUNT(*) counts rows), SUM/AVG accumulate both integer
// and float sums for integer arguments, MIN/MAX track both extrema.
type fusedState struct {
	count      int64
	sumI       int64
	sumF       float64
	hasMM      bool
	minI, maxI int64
	minF, maxF float64
	minS, maxS string
}

func newAggFold(node *plan.AggNode) *aggFold {
	a := &aggFold{
		specs:  node.Aggs,
		argPos: make([]int, len(node.Aggs)),
		states: make([]fusedState, len(node.Aggs)),
	}
	for i := range node.Aggs {
		a.argPos[i] = -1
		if c, ok := node.Aggs[i].Arg.(*plan.BCol); ok {
			a.argPos[i] = c.Ordinal
		}
	}
	return a
}

// identity returns a reusable [0, n) selection.
func (a *aggFold) identity(n int) []int {
	if cap(a.all) < n {
		a.all = make([]int, n)
		for i := range a.all {
			a.all[i] = i
		}
	}
	return a.all[:n]
}

// fold accumulates the selected rows of one row group (or one compacted
// batch, with sel the identity). A dictionary view in dicts substitutes
// for its nil vector slot — string extrema translate through the
// dictionary per surviving row.
func (a *aggFold) fold(vecs []*col.Vector, dicts map[int]*vec.DictCol, sel []int) {
	for i := range a.specs {
		spec := &a.specs[i]
		st := &a.states[i]
		if spec.Func == plan.AggCountStar {
			st.count += int64(len(sel)) // COUNT(*) counts NULLs too
			continue
		}
		pos := a.argPos[i]
		if dc := dicts[pos]; dc != nil {
			foldDict(st, spec.Func, dc, sel)
			continue
		}
		foldVector(st, spec.Func, vecs[pos], sel)
	}
}

func foldVector(st *fusedState, fn plan.AggFunc, v *col.Vector, sel []int) {
	if fn == plan.AggCount {
		if v.Valid == nil {
			st.count += int64(len(sel))
			return
		}
		for _, r := range sel {
			if v.Valid[r] {
				st.count++
			}
		}
		return
	}
	switch v.Type {
	case col.INT64, col.DATE, col.TIMESTAMP:
		foldInts(st, fn, v.Ints, v.Valid, sel)
	case col.FLOAT64:
		foldFloats(st, fn, v.Floats, v.Valid, sel)
	case col.STRING:
		foldStrs(st, v.Strs, v.Valid, sel)
	}
}

func foldInts(st *fusedState, fn plan.AggFunc, vals []int64, valid []bool, sel []int) {
	switch fn {
	case plan.AggSum, plan.AggAvg:
		if valid == nil {
			for _, r := range sel {
				x := vals[r]
				st.count++
				st.sumI += x
				st.sumF += float64(x)
			}
			return
		}
		for _, r := range sel {
			if !valid[r] {
				continue
			}
			x := vals[r]
			st.count++
			st.sumI += x
			st.sumF += float64(x)
		}
	case plan.AggMin, plan.AggMax:
		for _, r := range sel {
			if valid != nil && !valid[r] {
				continue
			}
			x := vals[r]
			if !st.hasMM {
				st.minI, st.maxI, st.hasMM = x, x, true
				continue
			}
			if x < st.minI {
				st.minI = x
			}
			if x > st.maxI {
				st.maxI = x
			}
		}
	}
}

func foldFloats(st *fusedState, fn plan.AggFunc, vals []float64, valid []bool, sel []int) {
	switch fn {
	case plan.AggSum, plan.AggAvg:
		for _, r := range sel {
			if valid != nil && !valid[r] {
				continue
			}
			st.count++
			st.sumF += vals[r]
		}
	case plan.AggMin, plan.AggMax:
		// Plain < and > mirror col.Value.Compare's float ordering exactly,
		// NaN included: a NaN candidate never displaces the extremum, and a
		// NaN first value is never displaced.
		for _, r := range sel {
			if valid != nil && !valid[r] {
				continue
			}
			x := vals[r]
			if !st.hasMM {
				st.minF, st.maxF, st.hasMM = x, x, true
				continue
			}
			if x < st.minF {
				st.minF = x
			}
			if x > st.maxF {
				st.maxF = x
			}
		}
	}
}

// foldStrs tracks string extrema (MIN/MAX are the only string folds).
// Retained strings are cloned exactly when the extremum changes — decoded
// vectors alias reusable chunk scratch, which the next row group
// overwrites.
func foldStrs(st *fusedState, vals []string, valid []bool, sel []int) {
	for _, r := range sel {
		if valid != nil && !valid[r] {
			continue
		}
		x := vals[r]
		if !st.hasMM {
			x = strings.Clone(x)
			st.minS, st.maxS, st.hasMM = x, x, true
			continue
		}
		if x < st.minS {
			st.minS = strings.Clone(x)
		}
		if x > st.maxS {
			st.maxS = strings.Clone(x)
		}
	}
}

// foldDict folds a string column that stayed at the code level: validity
// from the view, row values translated through the dictionary only for
// surviving rows.
func foldDict(st *fusedState, fn plan.AggFunc, dc *vec.DictCol, sel []int) {
	if fn == plan.AggCount {
		if dc.Valid == nil {
			st.count += int64(len(sel))
			return
		}
		for _, r := range sel {
			if dc.Valid[r] {
				st.count++
			}
		}
		return
	}
	for _, r := range sel {
		if dc.Valid != nil && !dc.Valid[r] {
			continue
		}
		x := dc.Dict[dc.Codes[r]]
		if !st.hasMM {
			x = strings.Clone(x)
			st.minS, st.maxS, st.hasMM = x, x, true
			continue
		}
		if x < st.minS {
			st.minS = strings.Clone(x)
		}
		if x > st.maxS {
			st.maxS = strings.Clone(x)
		}
	}
}

// result builds the one-row output batch, matching HashAggOp's results for
// the same input exactly (COUNT never NULL, SUM/AVG NULL over zero
// non-null inputs, MIN/MAX NULL over none).
func (a *aggFold) result(node *plan.AggNode) *col.Batch {
	schema := node.Schema()
	vecs := make([]*col.Vector, schema.Len())
	for i := range a.specs {
		out := col.NewVector(schema.Fields[i].Type, 1)
		if v, null := a.states[i].value(&a.specs[i]); null {
			out.SetNull(0)
		} else {
			out.Set(0, v)
		}
		vecs[i] = out
	}
	return &col.Batch{Vecs: vecs, N: 1}
}

func (st *fusedState) value(spec *plan.AggSpec) (col.Value, bool) {
	switch spec.Func {
	case plan.AggCountStar, plan.AggCount:
		return col.Int(st.count), false
	case plan.AggSum:
		if st.count == 0 {
			return col.Value{}, true
		}
		if spec.Ty == col.INT64 {
			return col.Int(st.sumI), false
		}
		return col.Float(st.sumF), false
	case plan.AggAvg:
		if st.count == 0 {
			return col.Value{}, true
		}
		return col.Float(st.sumF / float64(st.count)), false
	case plan.AggMin:
		if !st.hasMM {
			return col.Value{}, true
		}
		return st.extremum(spec.Ty, true), false
	case plan.AggMax:
		if !st.hasMM {
			return col.Value{}, true
		}
		return st.extremum(spec.Ty, false), false
	}
	return col.Value{}, true
}

func (st *fusedState) extremum(ty col.Type, min bool) col.Value {
	switch ty {
	case col.FLOAT64:
		if min {
			return col.Float(st.minF)
		}
		return col.Float(st.maxF)
	case col.STRING:
		if min {
			return col.Str(st.minS)
		}
		return col.Str(st.maxS)
	default: // INT64, DATE, TIMESTAMP
		v := st.minI
		if !min {
			v = st.maxI
		}
		return col.Value{Type: ty, I: v}
	}
}
