package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// DefaultParallelism resolves a parallelism knob: a positive value is taken
// as-is, anything else means "one worker per CPU".
func DefaultParallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// RunPlanParallel executes a plan with intra-query parallelism on the VM
// side. It reuses the CF decomposition (Sec. III-A) to partition the
// dominant scan's files across up to `parallelism` in-process workers, but
// unlike the CF path the worker batches stream directly into the
// coordinator-side merge plan — no intermediate pixfiles touch the object
// store, so BytesIntermediate stays zero and BytesScanned remains exactly
// the $/TB-scan billing unit of Sec. III-B.
//
// Being in-process also unlocks the merge-side splits CF workers cannot
// run: single-join plans partition the probe side while all workers share
// one immutable build-side hash table (built once, billed once), and ORDER
// BY + LIMIT plans run a bounded top-N per worker so the coordinator merges
// k·N rows instead of sorting every partition's output.
//
// Plans that cannot be decomposed (no scans, empty tables) and single-file
// partitions fall back to the serial RunPlan. Partitions are contiguous
// file ranges and the merge consumes worker outputs in partition order, so
// rows arrive at the merge in the serial plan's order — results match
// serial execution exactly, including sort ties, top-N cutoffs and group
// first-appearance order.
func (e *Engine) RunPlanParallel(ctx context.Context, node plan.Node, parallelism int) (*Result, error) {
	parallelism = DefaultParallelism(parallelism)
	if parallelism <= 1 {
		return e.RunPlan(ctx, node)
	}
	// Process-wide parallelism budget: the first worker is free, each
	// additional one needs a token (non-blocking), so overlapping queries
	// divide the host's worker pool instead of multiplying it. Narrower
	// widths produce identical results — only the partition count changes.
	parallelism, releaseWidth := acquireParallelWidth(parallelism)
	defer releaseWidth()
	if parallelism <= 1 {
		return e.RunPlan(ctx, node)
	}
	split, err := e.SplitForCFOpts(node, "local", parallelism, SplitOptions{
		SharedJoinBuild: true,
		TopN:            true,
	})
	if err != nil || len(split.Tasks) <= 1 {
		return e.RunPlan(ctx, node)
	}
	if !drainsFully(split.mergePlan, split.interm) {
		// A merge plan that can stop early (LIMIT with no blocking
		// operator below it) would leave workers mid-scan with however
		// many row groups their buffers ran ahead, making BytesScanned —
		// the billing unit — inflated and timing-dependent. The serial
		// path pulls lazily and bills the minimum.
		return e.RunPlan(ctx, node)
	}
	return e.runSplitParallel(ctx, split)
}

// drainsFully reports whether executing plan n is guaranteed to consume the
// target scan to exhaustion. A LimitNode stops pulling once satisfied, so
// the target is only safe if a blocking operator — sort, aggregation, or a
// join's build side, all of which materialize their input before emitting —
// sits between the limit and the target.
func drainsFully(n plan.Node, target *plan.ScanNode) bool {
	path := pathTo(n, target)
	if path == nil {
		return false // target unreachable: be conservative
	}
	// Walk from the target upward; once a blocking operator is crossed,
	// limits above it cannot cut the target's consumption short.
	protected := false
	for i := len(path) - 2; i >= 0; i-- {
		switch x := path[i].(type) {
		case *plan.SortNode, *plan.AggNode:
			protected = true
		case *plan.JoinNode:
			if x.Right == path[i+1] {
				protected = true
			}
		case *plan.LimitNode:
			if !protected {
				return false
			}
		}
	}
	return true
}

// pathTo returns the root→target node path, or nil.
func pathTo(n plan.Node, target *plan.ScanNode) []plan.Node {
	if n == plan.Node(target) {
		return []plan.Node{n}
	}
	for _, c := range n.Children() {
		if p := pathTo(c, target); p != nil {
			return append([]plan.Node{n}, p...)
		}
	}
	return nil
}

// runSplitParallel fans the split's tasks out over goroutines and merges
// their streamed outputs.
func (e *Engine) runSplitParallel(ctx context.Context, split *CFSplit) (*Result, error) {
	ctx, pspan := obs.StartSpan(ctx, "exec:parallel")
	defer pspan.End()
	pspan.SetAttr("parts", len(split.Tasks))
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// A shared-build split evaluates the join's build (right) side here,
	// exactly once — the same number of scans the serial plan performs —
	// and every probe worker gets the same immutable hash table.
	var joinBuilds map[*plan.JoinNode]*exec.JoinBuild
	var buildStats Stats
	if split.buildJoin != nil {
		bspan := pspan.StartChild("join-build")
		rightOp, err := exec.BuildWith(split.buildJoin.Right, exec.BuildEnv{
			ScanFactory:  e.scanFactory(wctx, &buildStats, nil, pipelineEligible(split.buildJoin.Right)),
			Interpreted:  e.interp,
			FusedAggScan: e.fusedAggScan(wctx, &buildStats, nil, pipelineEligible(split.buildJoin.Right)),
			Span:         bspan,
		})
		if err != nil {
			bspan.End()
			return nil, err
		}
		jb, err := exec.PrepareJoinBuild(split.buildJoin, rightOp)
		bspan.End()
		if err != nil {
			return nil, err
		}
		joinBuilds = map[*plan.JoinNode]*exec.JoinBuild{split.buildJoin: jb}
	}

	n := len(split.Tasks)
	workerStats := make([]Stats, n)
	workerErrs := make([]error, n)
	chans := make([]chan *col.Batch, n)
	for i := range chans {
		chans[i] = make(chan *col.Batch, 2)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(chans[i])
			wspan := pspan.StartChild(fmt.Sprintf("worker:%d", i))
			workerErrs[i] = e.runWorkerStreaming(obs.ContextWithSpan(wctx, wspan), split, i, joinBuilds, &workerStats[i], chans[i])
			wspan.SetAttr("rows_scanned", workerStats[i].RowsScanned)
			wspan.End()
			if workerErrs[i] != nil {
				cancel() // abort sibling workers
			}
		}(i)
	}

	// The merge plan reads worker batches through the synthetic
	// intermediate scan. Top-N splits stream the k already-sorted worker
	// outputs through a heap merge — O(k·N log k) instead of a full
	// coordinator re-sort — with key ties resolving toward the
	// lower-indexed (earlier-partition) worker, exactly as the serial
	// stable sort would. Every other mode consumes partition by partition,
	// in task order, which keeps group first-appearance order (and
	// therefore output order) deterministic.
	streams := make([]exec.BatchIterator, n)
	for i := range streams {
		i := i
		streams[i] = func() (*col.Batch, error) {
			b, ok := <-chans[i]
			if !ok {
				if err := workerErrs[i]; err != nil {
					return nil, err
				}
				return nil, nil
			}
			return b, nil
		}
	}
	mergePlan := split.mergePlan
	var iter exec.BatchIterator
	if split.Mode == SplitTopN && split.sortedMerge != nil {
		mergePlan = split.sortedMerge
		iter = exec.MergeSorted(streams, split.mergeKeys, split.workerPlan.Schema())
	} else {
		next := 0
		iter = func() (*col.Batch, error) {
			for next < n {
				b, err := streams[next]()
				if err != nil {
					return nil, err
				}
				if b == nil {
					next++
					continue
				}
				return b, nil
			}
			return nil, nil
		}
	}

	stats := &Stats{}
	overrides := map[*plan.ScanNode]scanOverride{
		split.interm: {iter: iter},
	}
	mspan := pspan.StartChild("merge")
	op, err := exec.BuildWith(mergePlan, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, overrides, nil),
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, overrides, nil),
		Span:         mspan,
	})
	var out *col.Batch
	if err == nil {
		out, err = exec.Collect(op)
	}
	mspan.End()

	// Unblock any worker still producing, then wait for all of them so the
	// per-worker stats reads below cannot race.
	cancel()
	for _, ch := range chans {
		for range ch {
		}
	}
	wg.Wait()

	if err != nil {
		// A worker canceled by a sibling's failure surfaces
		// context.Canceled; prefer the root cause.
		if errors.Is(err, context.Canceled) && ctx.Err() == nil {
			for _, werr := range workerErrs {
				if werr != nil && !errors.Is(werr, context.Canceled) {
					return nil, werr
				}
			}
		}
		return nil, err
	}
	stats.Add(buildStats)
	for i := range workerStats {
		stats.Add(workerStats[i])
	}
	return resultFromBatch(mergePlan.Schema(), out, *stats), nil
}

// runWorkerStreaming executes one task's fragment over its file partition
// and streams result batches into out. Stats accumulate into the caller's
// per-worker slot only — the caller folds them into the query total after
// all workers have stopped.
func (e *Engine) runWorkerStreaming(ctx context.Context, split *CFSplit, task int, joinBuilds map[*plan.JoinNode]*exec.JoinBuild, stats *Stats, out chan<- *col.Batch) error {
	overrides := map[*plan.ScanNode]scanOverride{
		split.partScan: {files: split.Tasks[task].Files},
	}
	op, err := exec.BuildWith(split.workerPlan, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, overrides, pipelineEligible(split.workerPlan)),
		JoinBuilds:   joinBuilds,
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, overrides, pipelineEligible(split.workerPlan)),
		Span:         obs.SpanFrom(ctx),
	})
	if err != nil {
		return err
	}
	if err := op.Open(); err != nil {
		return err
	}
	defer op.Close()
	for {
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if b.N == 0 {
			continue
		}
		select {
		case out <- b:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
