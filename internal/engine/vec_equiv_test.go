package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/pixfile"
	"repro/internal/sql"
)

// newNullHeavyEngine builds a table where every nullable column is ~1/3
// NULL, so the vectorized and interpreted paths are compared under heavy
// three-valued logic, with row groups that are fully matching, partially
// matching and zero-matching for typical predicates.
func newNullHeavyEngine(t testing.TB) *Engine {
	t.Helper()
	e := New(catalog.New(), objstore.NewMemory())
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		`CREATE TABLE nh (n_key BIGINT NOT NULL, n_a BIGINT, n_b DOUBLE,
			n_s VARCHAR, n_flag BOOLEAN)`,
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	words := []string{"word", "world", "wo", "abc", ""}
	r := rand.New(rand.NewSource(11))
	for f := 0; f < 4; f++ {
		const rows = 2048
		key := col.NewVector(col.INT64, rows)
		a := col.NewVector(col.INT64, rows)
		b := col.NewVector(col.FLOAT64, rows)
		s := col.NewVector(col.STRING, rows)
		fl := col.NewVector(col.BOOL, rows)
		for i := 0; i < rows; i++ {
			id := f*rows + i
			key.Ints[i] = int64(id)
			a.Ints[i] = int64(r.Intn(9) - 4)
			b.Floats[i] = float64(r.Intn(21)-10) / 4
			s.Strs[i] = fmt.Sprintf("%s-%d", words[r.Intn(len(words))], r.Intn(5))
			fl.Bools[i] = r.Intn(2) == 0
			for _, v := range []*col.Vector{a, b, s, fl} {
				if r.Intn(3) == 0 {
					v.SetNull(i)
				}
			}
		}
		if err := e.LoadBatch("db", "nh", col.NewBatch(key, a, b, s, fl),
			pixfile.WriterOptions{RowGroupSize: 256}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// vecEquivAtoms are WHERE building blocks spanning the kernel set (arith,
// comparisons, IS NULL, IN, every LIKE shape, CASE, scalar functions) and a
// deliberate fallback (CAST compiles to no kernel), plus zero-match and
// all-match shapes. String atoms mix dictionary-eligible forms (only the
// string column itself under compare/LIKE/IN) with ones that force full
// decode (functions over the string column).
var vecEquivAtoms = []string{
	"n_a % 3 = 1",
	"(n_key + n_a) % 5 < 2",
	"n_b * 2 > n_a",
	"n_key / 3 > 500",
	"n_s LIKE 'wo%'",
	"n_s LIKE '%-3'",
	"n_s LIKE '%or%'",
	"n_s LIKE 'w_rd-_'",
	"n_s = 'word-1'",
	"n_s IN ('word-1', 'wo-4', '')",
	"n_a IS NULL",
	"n_b IS NOT NULL",
	"n_a IN (1, 2)",
	"n_key < 0",
	"n_key >= 0",
	"-n_a > 2",
	"CASE WHEN n_a > 0 THEN n_b ELSE -n_b END > 0.5",
	"CASE WHEN n_flag THEN 1 ELSE 0 END = 1",
	"LENGTH(n_s) > 5",
	"LOWER(n_s) = 'word-1'",
	"SUBSTR(n_s, 1, 2) = 'wo'",
	"ABS(n_a) = 2",
	"COALESCE(n_a, 0) >= 0",
	"CAST(n_a AS VARCHAR) = '1'",
}

func randPredicate(r *rand.Rand) string {
	atom := func() string {
		a := vecEquivAtoms[r.Intn(len(vecEquivAtoms))]
		if r.Intn(4) == 0 {
			return "NOT (" + a + ")"
		}
		return a
	}
	p := atom()
	for n := r.Intn(3); n > 0; n-- {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		p = fmt.Sprintf("(%s) %s (%s)", p, op, atom())
	}
	return p
}

// runVecEquivQuery executes q on every execution shape of one engine:
// pipelined and synchronous serial scans, and parallel widths 2 and 8.
func runVecEquivQuery(t *testing.T, e *Engine, q string) []*Result {
	t.Helper()
	ctx := context.Background()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel := stmt.(*sql.Select)
	var out []*Result
	run := func(prefetch, width int) {
		e.SetScanPrefetch(prefetch)
		node, err := e.PlanQuery("db", sel)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		var res *Result
		if width <= 1 {
			res, err = e.RunPlan(ctx, node)
		} else {
			res, err = e.RunPlanParallel(ctx, node, width)
		}
		if err != nil {
			t.Fatalf("run %q (prefetch=%d width=%d): %v", q, prefetch, width, err)
		}
		out = append(out, res)
	}
	run(-1, 1) // synchronous
	run(4, 1)  // pipelined
	run(4, 2)
	run(4, 8)
	e.SetScanPrefetch(0)
	return out
}

// TestVectorizedEquivalenceProperty: for random NULL-heavy predicates, the
// vectorized path must be bit-identical to the interpreted path — same
// rows, same billed bytes, same scan stats — across serial, pipelined and
// parallel execution at widths 1/2/8.
func TestVectorizedEquivalenceProperty(t *testing.T) {
	e := newNullHeavyEngine(t)
	r := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 20; trial++ {
		pred := randPredicate(r)
		q := fmt.Sprintf(`SELECT COUNT(*), SUM(n_key), SUM(n_a), MIN(n_s), MAX(n_b)
			FROM nh WHERE %s`, pred)

		e.SetVectorized(false)
		interp := runVecEquivQuery(t, e, q)
		e.SetVectorized(true)
		vecd := runVecEquivQuery(t, e, q)

		base := interp[0]
		for i, res := range append(interp[1:], vecd...) {
			label := fmt.Sprintf("trial %d variant %d (%s)", trial, i, pred)
			gb, wb := rowsAsStrings(res), rowsAsStrings(base)
			if len(gb) != len(wb) {
				t.Fatalf("%s: %d rows vs %d", label, len(gb), len(wb))
			}
			for j := range gb {
				if gb[j] != wb[j] {
					t.Fatalf("%s: row %d %q vs %q", label, j, gb[j], wb[j])
				}
			}
			if res.Stats.BytesScanned != base.Stats.BytesScanned {
				t.Fatalf("%s: billed bytes %d vs %d", label, res.Stats.BytesScanned, base.Stats.BytesScanned)
			}
			if res.Stats.RowsScanned != base.Stats.RowsScanned ||
				res.Stats.RowsFiltered != base.Stats.RowsFiltered ||
				res.Stats.ColumnChunksSkipped != base.Stats.ColumnChunksSkipped ||
				res.Stats.RowGroupsPruned != base.Stats.RowGroupsPruned {
				t.Fatalf("%s: scan stats diverge: %+v vs %+v", label, res.Stats, base.Stats)
			}
		}
	}
}

// TestVectorizedEquivalenceRowOutput covers non-aggregate output (projected
// expressions and raw rows survive compaction identically, including the
// selection-aware decode of partially matching groups).
func TestVectorizedEquivalenceRowOutput(t *testing.T) {
	e := newNullHeavyEngine(t)
	queries := []string{
		// Partial row groups + payload string/float columns.
		"SELECT n_key, n_s, n_b FROM nh WHERE n_a % 3 = 1 ORDER BY n_key",
		// Projection arithmetic through the value kernels.
		"SELECT n_key + 1, n_a * 2, n_b / 4 FROM nh WHERE n_key % 97 = 0 ORDER BY n_key",
		// NULL-dominated predicate.
		"SELECT n_key FROM nh WHERE n_a IS NULL AND n_s LIKE 'wo%' ORDER BY n_key",
		// CASE and scalar functions through the value kernels, over a
		// dictionary-eligible string predicate.
		`SELECT CASE WHEN n_a > 0 THEN 'pos' WHEN n_a < 0 THEN 'neg' ELSE 'zero' END,
			UPPER(n_s), LENGTH(n_s), COALESCE(n_a, -99)
			FROM nh WHERE n_s LIKE '%or%' ORDER BY n_key`,
		// Nested functions + ROUND over floats.
		`SELECT SUBSTR(CONCAT(n_s, '!'), 2, 3), ROUND(n_b), ABS(n_a)
			FROM nh WHERE n_key % 53 = 0 ORDER BY n_key`,
	}
	ctx := context.Background()
	for _, q := range queries {
		e.SetVectorized(false)
		base, err := e.Execute(ctx, "db", q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		e.SetVectorized(true)
		got, err := e.Execute(ctx, "db", q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		gb, wb := rowsAsStrings(got), rowsAsStrings(base)
		if len(gb) != len(wb) {
			t.Fatalf("%s: %d rows vs %d", q, len(gb), len(wb))
		}
		for j := range gb {
			if gb[j] != wb[j] {
				t.Fatalf("%s: row %d %q vs %q", q, j, gb[j], wb[j])
			}
		}
		if got.Stats.BytesScanned != base.Stats.BytesScanned {
			t.Fatalf("%s: billed bytes %d vs %d", q, got.Stats.BytesScanned, base.Stats.BytesScanned)
		}
	}
}
