package engine

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/sql"
)

// TestCFSplitEquivalenceProperty: for randomized aggregate queries, the CF
// path (split -> workers -> merge) must produce exactly the local result.
func TestCFSplitEquivalenceProperty(t *testing.T) {
	e := newSplitEngine(t)
	ctx := context.Background()
	groupCols := []string{"f_cat", "f_dim"}
	aggs := []string{"COUNT(*)", "SUM(f_val)", "AVG(f_val)", "MIN(f_key)", "MAX(f_val)"}

	runID := 0
	f := func(groupPick, aggPick, threshold uint8, partsPick uint8) bool {
		runID++
		group := groupCols[int(groupPick)%len(groupCols)]
		agg := aggs[int(aggPick)%len(aggs)]
		parts := 1 + int(partsPick)%6
		q := fmt.Sprintf("SELECT %s, %s AS a FROM fact WHERE f_val > %d GROUP BY %s ORDER BY %s",
			group, agg, int(threshold)%10, group, group)

		stmt, err := sql.Parse(q)
		if err != nil {
			return false
		}
		sel := stmt.(*sql.Select)
		localPlan, err := e.PlanQuery("db", sel)
		if err != nil {
			return false
		}
		local, err := e.RunPlan(ctx, localPlan)
		if err != nil {
			return false
		}

		cfPlan, err := e.PlanQuery("db", sel)
		if err != nil {
			return false
		}
		split, err := e.SplitForCF(cfPlan, fmt.Sprintf("prop-%d", runID), parts)
		if err != nil {
			return false
		}
		var interms []catalog.FileMeta
		for i := range split.Tasks {
			meta, _, err := e.RunWorker(ctx, split, i)
			if err != nil {
				return false
			}
			interms = append(interms, meta)
		}
		merged, err := e.MergeResults(ctx, split, interms)
		if err != nil {
			return false
		}
		// Partial aggregation reorders float additions, so float cells are
		// compared with a relative tolerance; everything else exactly.
		if len(local.Rows) != len(merged.Rows) {
			return false
		}
		for i := range local.Rows {
			for c := range local.Rows[i] {
				a, b := local.Rows[i][c], merged.Rows[i][c]
				if a.Null != b.Null {
					return false
				}
				if a.Null {
					continue
				}
				if a.Type.Numeric() && b.Type.Numeric() {
					af, bf := a.AsFloat(), b.AsFloat()
					diff := af - bf
					if diff < 0 {
						diff = -diff
					}
					scale := 1.0
					if af > scale {
						scale = af
					}
					if -af > scale {
						scale = -af
					}
					if diff > 1e-9*scale {
						t.Logf("query %q parts=%d row %d col %d: local %v vs cf %v", q, parts, i, c, a, b)
						return false
					}
					continue
				}
				if !a.Equal(b) {
					t.Logf("query %q parts=%d row %d col %d: local %v vs cf %v", q, parts, i, c, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDistributedEquivalenceProperty: randomized queries must produce
// bit-identical rows and identical billed bytes across all three execution
// tiers — serial, in-process parallel, and multi-process (one subprocess
// worker per task, store-based shuffle). The partitioned fixture holds
// integer-valued floats, so no tolerance is needed: any accumulation-order
// or serialization drift is a failure.
func TestDistributedEquivalenceProperty(t *testing.T) {
	e, dir := newDiskEngine(t, 8, 400)
	proc := newProcessInvoker(dir)
	ctx := context.Background()
	groupCols := []string{"f_cat", "f_dim"}
	aggs := []string{"COUNT(*)", "SUM(f_val)", "AVG(f_val)", "MIN(f_key)", "MAX(f_val)"}
	widths := []int{1, 2, 8}

	runID := 0
	f := func(shapePick, groupPick, aggPick, threshold, widthPick uint8) bool {
		runID++
		width := widths[int(widthPick)%len(widths)]
		var q string
		if shapePick%4 == 0 {
			// Top-N shape: workers ship bounded sorted intermediates.
			q = fmt.Sprintf("SELECT f_key, f_val FROM fact WHERE f_val > %d ORDER BY f_val DESC, f_key LIMIT %d",
				int(threshold)%10, 1+int(aggPick)%20)
		} else {
			group := groupCols[int(groupPick)%len(groupCols)]
			agg := aggs[int(aggPick)%len(aggs)]
			q = fmt.Sprintf("SELECT %s, %s AS a FROM fact WHERE f_val > %d GROUP BY %s ORDER BY %s",
				group, agg, int(threshold)%10, group, group)
		}
		label := fmt.Sprintf("%s @%d", q, width)

		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		sel := stmt.(*sql.Select)
		sNode, err := e.PlanQuery("db", sel)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		serial, err := e.RunPlan(ctx, sNode)
		if err != nil {
			t.Fatalf("serial %s: %v", label, err)
		}

		pNode, err := e.PlanQuery("db", sel)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		par, err := e.RunPlanParallel(ctx, pNode, width)
		if err != nil {
			t.Fatalf("parallel %s: %v", label, err)
		}
		expectIdentical(t, label, serial, par)

		dNode, err := e.PlanQuery("db", sel)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		dist, err := e.RunPlanDistributed(ctx, dNode, fmt.Sprintf("prop-dist-%d", runID),
			DistOptions{Parts: width, Invoker: proc})
		if err != nil {
			t.Fatalf("distributed %s: %v", label, err)
		}
		expectDistMatchesSerial(t, label, serial, dist)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestZoneMapEquivalenceProperty: stripping zone-map predicates (disabling
// pruning) must never change query results — pruning is purely a physical
// optimization.
func TestZoneMapEquivalenceProperty(t *testing.T) {
	e := newSplitEngine(t)
	ctx := context.Background()
	ops := []string{"=", "<", "<=", ">", ">=", "<>"}

	f := func(opPick uint8, key uint16) bool {
		op := ops[int(opPick)%len(ops)]
		q := fmt.Sprintf("SELECT COUNT(*), SUM(f_val) FROM fact WHERE f_key %s %d", op, int(key)%3500)

		stmt, err := sql.Parse(q)
		if err != nil {
			return false
		}
		sel := stmt.(*sql.Select)

		pruned, err := e.PlanQuery("db", sel)
		if err != nil {
			return false
		}
		prunedRes, err := e.RunPlan(ctx, pruned)
		if err != nil {
			return false
		}

		unpruned, err := e.PlanQuery("db", sel)
		if err != nil {
			return false
		}
		for _, scan := range plan.Scans(unpruned) {
			scan.ZonePreds = nil
		}
		unprunedRes, err := e.RunPlan(ctx, unpruned)
		if err != nil {
			return false
		}

		lg, mg := rowsAsStrings(prunedRes), rowsAsStrings(unprunedRes)
		if len(lg) != len(mg) {
			return false
		}
		for i := range lg {
			if lg[i] != mg[i] {
				t.Logf("query %q: pruned %q vs unpruned %q", q, lg[i], mg[i])
				return false
			}
		}
		// Equality predicates on the clustered key must actually prune.
		if op == "=" && prunedRes.Stats.RowGroupsPruned == 0 {
			t.Logf("query %q pruned nothing", q)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSortedOutputProperty: ORDER BY output must be sorted regardless of
// filter selectivity.
func TestSortedOutputProperty(t *testing.T) {
	e := newSplitEngine(t)
	ctx := context.Background()
	f := func(threshold uint8) bool {
		q := fmt.Sprintf("SELECT f_key, f_val FROM fact WHERE f_val > %d ORDER BY f_val DESC, f_key ASC LIMIT 50", int(threshold)%10)
		res, err := e.Execute(ctx, "db", q)
		if err != nil {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			prev, cur := res.Rows[i-1], res.Rows[i]
			if prev[1].F < cur[1].F {
				return false
			}
			if prev[1].F == cur[1].F && prev[0].I > cur[0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
