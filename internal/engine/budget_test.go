package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/objstore"
	"repro/internal/pixfile"
)

// newBudgetEngine loads a table with many row groups so a pipelined scan
// keeps several decode workers busy.
func newBudgetEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(catalog.New(), objstore.NewMemory())
	ctx := context.Background()
	for _, q := range []string{
		"CREATE DATABASE db",
		"CREATE TABLE big (b_key BIGINT NOT NULL, b_val DOUBLE NOT NULL, b_s VARCHAR NOT NULL)",
	} {
		if _, err := e.Execute(ctx, "db", q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	for f := 0; f < 4; f++ {
		const rows = 4096
		k := col.NewVector(col.INT64, rows)
		v := col.NewVector(col.FLOAT64, rows)
		s := col.NewVector(col.STRING, rows)
		for i := 0; i < rows; i++ {
			id := f*rows + i
			k.Ints[i] = int64(id)
			v.Floats[i] = float64(id) / 3
			s.Strs[i] = fmt.Sprintf("val-%d-%d", id, id*7)
		}
		if err := e.LoadBatch("db", "big", col.NewBatch(k, v, s),
			pixfile.WriterOptions{RowGroupSize: 128}); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestPrefetchBudgetBounds: with a budget of 1 token, concurrent pipelined
// scans may never hold more than one token at once no matter how many
// decode workers their depth implies (worker 0 of each pipeline is exempt
// and unobserved — the bound is on tokened decodes).
func TestPrefetchBudgetBounds(t *testing.T) {
	e := newBudgetEngine(t)
	e.SetScanPrefetch(8)
	SetPrefetchBudget(1)
	defer SetPrefetchBudget(0)
	ResetPrefetchBudgetStats()

	ctx := context.Background()
	const q = "SELECT COUNT(*), SUM(b_val), MIN(b_s) FROM big"
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Execute(ctx, "db", q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if hw := PrefetchBudgetHighWater(); hw > 1 {
		t.Errorf("budget 1 but %d tokened decodes ran concurrently", hw)
	}
}

// TestPrefetchBudgetUnlimited: a negative budget removes the bound and the
// pipeline still drains correctly.
func TestPrefetchBudgetUnlimited(t *testing.T) {
	e := newBudgetEngine(t)
	e.SetScanPrefetch(8)
	SetPrefetchBudget(-1)
	defer SetPrefetchBudget(0)

	res, err := e.Execute(context.Background(), "db", "SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4*4096 {
		t.Fatalf("count %v", res.Rows[0][0])
	}
}

// TestPrefetchBudgetResultsUnchanged: the budget throttles scheduling only;
// results and billed bytes are identical at any budget.
func TestPrefetchBudgetResultsUnchanged(t *testing.T) {
	e := newBudgetEngine(t)
	e.SetScanPrefetch(8)
	ctx := context.Background()
	const q = "SELECT COUNT(*), SUM(b_val) FROM big WHERE b_key % 3 = 0"

	SetPrefetchBudget(0)
	base, err := e.Execute(ctx, "db", q)
	if err != nil {
		t.Fatal(err)
	}
	SetPrefetchBudget(1)
	defer SetPrefetchBudget(0)
	tight, err := e.Execute(ctx, "db", q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rowsAsStrings(base)) != fmt.Sprint(rowsAsStrings(tight)) {
		t.Fatalf("rows differ: %v vs %v", rowsAsStrings(base), rowsAsStrings(tight))
	}
	if base.Stats.BytesScanned != tight.Stats.BytesScanned {
		t.Fatalf("billed bytes differ: %d vs %d", base.Stats.BytesScanned, tight.Stats.BytesScanned)
	}
}
