// Package engine glues the SQL front-end, planner, executor, catalog,
// columnar format and object store into a runnable query engine. It is the
// execution substrate that both the "VM side" and the CF workers of
// Pixels-Turbo run; internal/core schedules onto it.
package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/objstore"
	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Engine executes SQL over tables stored as pixfiles in an object store.
// It is safe for concurrent use.
type Engine struct {
	cat   *catalog.Catalog
	store objstore.Store

	mu      sync.Mutex
	fileSeq map[string]int // per-table file sequence for unique keys
}

// New builds an engine over a catalog and store.
func New(cat *catalog.Catalog, store objstore.Store) *Engine {
	return &Engine{cat: cat, store: store, fileSeq: make(map[string]int)}
}

// Catalog exposes the metadata service.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the object store.
func (e *Engine) Store() objstore.Store { return e.store }

// Stats describes the physical work a query performed. BytesScanned counts
// base-table bytes — the billing unit the $/TB-scan prices of Section
// III-B apply to; BytesIntermediate counts reads of CF worker
// intermediates, which are infrastructure cost but not "data scanned".
type Stats struct {
	RowsReturned      int64
	RowsScanned       int64
	BytesScanned      int64
	BytesIntermediate int64
	RowGroupsRead     int
	RowGroupsPruned   int
	// CacheHits/CacheMisses count this query's ranged reads served from
	// the object-store read cache vs reads that paid a store request.
	// Cache hits never reduce BytesScanned — the $/TB billing unit counts
	// bytes scanned, not bytes physically fetched.
	CacheHits   int64
	CacheMisses int64
}

// Add merges two stats.
func (s *Stats) Add(o Stats) {
	s.RowsReturned += o.RowsReturned
	s.RowsScanned += o.RowsScanned
	s.BytesScanned += o.BytesScanned
	s.BytesIntermediate += o.BytesIntermediate
	s.RowGroupsRead += o.RowGroupsRead
	s.RowGroupsPruned += o.RowGroupsPruned
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Types   []col.Type
	Rows    [][]col.Value
	Stats   Stats
}

// resultFromBatch converts an output batch.
func resultFromBatch(schema *col.Schema, b *col.Batch, stats Stats) *Result {
	r := &Result{Stats: stats}
	for _, f := range schema.Fields {
		r.Columns = append(r.Columns, f.Name)
		r.Types = append(r.Types, f.Type)
	}
	for i := 0; i < b.N; i++ {
		r.Rows = append(r.Rows, b.Row(i))
	}
	r.Stats.RowsReturned = int64(b.N)
	return r
}

// PlanQuery parses nothing: it binds an already-parsed SELECT into an
// executable plan.
func (e *Engine) PlanQuery(db string, sel *sql.Select) (plan.Node, error) {
	return plan.NewBinder(e.cat, db).BindSelect(sel)
}

// Execute parses and runs any single statement against db. USE statements
// are rejected here: session state belongs to the caller.
func (e *Engine) Execute(ctx context.Context, db, text string) (*Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(ctx, db, stmt)
}

// ExecuteStmt runs a parsed statement.
func (e *Engine) ExecuteStmt(ctx context.Context, db string, stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		node, err := e.PlanQuery(db, s)
		if err != nil {
			return nil, err
		}
		return e.RunPlan(ctx, node)
	case *sql.Explain:
		inner, ok := s.Stmt.(*sql.Select)
		if !ok {
			return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
		}
		node, err := e.PlanQuery(db, inner)
		if err != nil {
			return nil, err
		}
		return explainResult(node), nil
	case *sql.CreateDatabase:
		return statusResult("CREATE DATABASE"), e.cat.CreateDatabase(s.Name)
	case *sql.DropDatabase:
		return statusResult("DROP DATABASE"), e.cat.DropDatabase(s.Name)
	case *sql.CreateTable:
		return statusResult("CREATE TABLE"), e.createTable(db, s)
	case *sql.DropTable:
		return statusResult("DROP TABLE"), e.dropTable(db, s)
	case *sql.Insert:
		n, err := e.insert(db, s)
		if err != nil {
			return nil, err
		}
		r := statusResult(fmt.Sprintf("INSERT %d", n))
		return r, nil
	case *sql.ShowDatabases:
		return e.showDatabases(), nil
	case *sql.ShowTables:
		return e.showTables(db)
	case *sql.Describe:
		return e.describe(db, s.Table)
	case *sql.Use:
		return nil, fmt.Errorf("engine: USE is handled by the client session")
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func statusResult(msg string) *Result {
	return &Result{
		Columns: []string{"status"},
		Types:   []col.Type{col.STRING},
		Rows:    [][]col.Value{{col.Str(msg)}},
	}
}

func explainResult(node plan.Node) *Result {
	r := &Result{Columns: []string{"plan"}, Types: []col.Type{col.STRING}}
	text := plan.Explain(node)
	for _, line := range splitLines(text) {
		r.Rows = append(r.Rows, []col.Value{col.Str(line)})
	}
	return r
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// RunPlan executes a plan locally (single process — the "VM side" path)
// and materializes the result.
func (e *Engine) RunPlan(ctx context.Context, node plan.Node) (*Result, error) {
	stats := &Stats{}
	op, err := exec.Build(node, e.scanFactory(ctx, stats, nil))
	if err != nil {
		return nil, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	return resultFromBatch(node.Schema(), out, *stats), nil
}

// scanFactory builds per-scan batch iterators. overrides maps a ScanNode to
// a replacement file list (used for CF partitioning and intermediate
// reads); nil means the table's own files.
func (e *Engine) scanFactory(ctx context.Context, stats *Stats, overrides map[*plan.ScanNode]scanOverride) func(*plan.ScanNode) func() (exec.BatchIterator, error) {
	return func(node *plan.ScanNode) func() (exec.BatchIterator, error) {
		return func() (exec.BatchIterator, error) {
			files := node.Table.Files
			interm := false
			if ov, ok := overrides[node]; ok {
				if ov.iter != nil {
					return ov.iter, nil
				}
				files = ov.files
				interm = ov.interm
			}
			return e.newFileIterator(ctx, files, node.Cols, node.ZonePreds, stats, interm), nil
		}
	}
}

type scanOverride struct {
	files  []catalog.FileMeta
	interm bool // files are CF worker intermediates, not base-table data
	// iter, when set, replaces file reading entirely: batches come from an
	// in-process stream (the parallel VM path) and no bytes are accounted.
	iter exec.BatchIterator
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// newFileIterator streams row groups of a list of pixfiles, applying
// zone-map pruning and projection, and accounting scanned bytes.
func (e *Engine) newFileIterator(ctx context.Context, files []catalog.FileMeta, cols []int, preds []pixfile.ColPredicate, stats *Stats, interm bool) exec.BatchIterator {
	fileIdx := 0
	var f *pixfile.File
	rg := 0
	account := func(n int64) {
		if interm {
			stats.BytesIntermediate += n
		} else {
			stats.BytesScanned += n
		}
	}
	return func() (*col.Batch, error) {
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if f == nil {
				if fileIdx >= len(files) {
					return nil, nil
				}
				meta := files[fileIdx]
				fileIdx++
				opened, err := pixfile.Open(e.rangeReader(meta.Key, stats), meta.Size)
				if err != nil {
					return nil, fmt.Errorf("engine: open %s: %w", meta.Key, err)
				}
				account(opened.BytesRead()) // footer
				f = opened
				rg = 0
			}
			if rg >= f.NumRowGroups() {
				f = nil
				continue
			}
			g := rg
			rg++
			if len(preds) > 0 && f.PruneRowGroup(g, preds) {
				stats.RowGroupsPruned++
				continue
			}
			before := f.BytesRead()
			b, err := f.ReadColumns(g, cols)
			if err != nil {
				return nil, err
			}
			account(f.BytesRead() - before)
			stats.RowsScanned += int64(b.N)
			stats.RowGroupsRead++
			return b, nil
		}
	}
}

// rangeReader builds the RangeReader a pixfile is opened with. When the
// store is fronted by a read cache (objstore.CachedRanger) each read also
// attributes a per-query cache hit or miss; the iterator that owns stats
// runs single-goroutine, so the increments need no synchronization.
func (e *Engine) rangeReader(key string, stats *Stats) pixfile.RangeReader {
	cr, ok := e.store.(objstore.CachedRanger)
	if !ok {
		return func(off, length int64) ([]byte, error) {
			return e.store.GetRange(key, off, length)
		}
	}
	return func(off, length int64) ([]byte, error) {
		data, hit, err := cr.GetRangeCached(key, off, length)
		if err == nil {
			if hit {
				stats.CacheHits++
			} else {
				stats.CacheMisses++
			}
		}
		return data, err
	}
}

// tableKeyPrefix is the object-store layout of a table.
func tableKeyPrefix(db, table string) string { return db + "/" + table + "/" }

// nextFileKey allocates a unique object key for a new table file.
func (e *Engine) nextFileKey(db, table string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	prefix := tableKeyPrefix(db, table)
	seq := e.fileSeq[prefix]
	e.fileSeq[prefix] = seq + 1
	return fmt.Sprintf("%sdata-%06d.pxl", prefix, seq)
}

// LoadBatch writes a batch as a new file of the table and registers it in
// the catalog. It is the bulk-load path used by the workload generator.
func (e *Engine) LoadBatch(db, table string, batch *col.Batch, opts pixfile.WriterOptions) error {
	t, err := e.cat.GetTable(db, table)
	if err != nil {
		return err
	}
	w := pixfile.NewWriter(t.Schema(), opts)
	if err := w.Append(batch); err != nil {
		return err
	}
	data, err := w.Finish()
	if err != nil {
		return err
	}
	key := e.nextFileKey(db, table)
	if err := e.store.Put(key, data); err != nil {
		return err
	}
	return e.cat.AddFiles(db, table, catalog.FileMeta{
		Key: key, Size: int64(len(data)), Rows: int64(batch.N),
	})
}
