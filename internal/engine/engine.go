// Package engine glues the SQL front-end, planner, executor, catalog,
// columnar format and object store into a runnable query engine. It is the
// execution substrate that both the "VM side" and the CF workers of
// Pixels-Turbo run; internal/core schedules onto it.
package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/objstore"
	"repro/internal/obs"
	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/sql"
)

// Engine executes SQL over tables stored as pixfiles in an object store.
// It is safe for concurrent use.
type Engine struct {
	cat   *catalog.Catalog
	store objstore.Store

	prefetch int  // row groups a draining scan decodes ahead; 0 = synchronous
	interp   bool // evaluate expressions with the interpreter only (no vec kernels)
	dictOff  bool // disable dictionary-aware predicate evaluation (ablation knob)
	fusedOff bool // disable fused aggregation kernels (ablation knob)

	mu      sync.Mutex
	fileSeq map[string]int // per-table file sequence for unique keys
}

// New builds an engine over a catalog and store. Vectorized expression
// evaluation (internal/vec) is on by default.
func New(cat *catalog.Catalog, store objstore.Store) *Engine {
	return &Engine{cat: cat, store: store, prefetch: DefaultScanPrefetch, fileSeq: make(map[string]int)}
}

// SetVectorized toggles the vectorized expression kernels (internal/vec):
// scan filters compile to selection-vector kernel programs with
// selection-aware payload decode, and executor filters/projections use the
// same kernels. Off means every expression runs through the row-at-a-time
// exec.Evaluator. Results, stats and billed bytes are bit-identical either
// way — the switch exists for the interpreted-vs-vectorized ablation.
// Call before issuing queries.
func (e *Engine) SetVectorized(on bool) { e.interp = !on }

// Vectorized reports whether the vec kernels are enabled.
func (e *Engine) Vectorized() bool { return !e.interp }

// SetScanPrefetch sets how many row groups ahead a fully-draining
// base-table scan may fetch and decode in its pipeline (see scanpipe.go).
// 0 restores DefaultScanPrefetch; negative disables the pipeline so every
// scan runs synchronously. Call before issuing queries.
func (e *Engine) SetScanPrefetch(n int) {
	switch {
	case n == 0:
		e.prefetch = DefaultScanPrefetch
	case n < 0:
		e.prefetch = 0
	default:
		e.prefetch = n
	}
}

// Catalog exposes the metadata service.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Store exposes the object store.
func (e *Engine) Store() objstore.Store { return e.store }

// Stats describes the physical work a query performed. BytesScanned counts
// base-table bytes — the billing unit the $/TB-scan prices of Section
// III-B apply to; BytesIntermediate counts reads of CF worker
// intermediates, which are infrastructure cost but not "data scanned".
type Stats struct {
	RowsReturned      int64
	RowsScanned       int64
	BytesScanned      int64
	BytesIntermediate int64
	RowGroupsRead     int
	RowGroupsPruned   int
	// ColumnChunksSkipped counts projected column chunks a scan never
	// fetched or decoded because the row group's predicate columns selected
	// zero rows (late materialization). Unlike cache hits, skipped chunks
	// do reduce BytesScanned: the bytes were genuinely not scanned.
	ColumnChunksSkipped int64
	// RowsFiltered counts rows dropped by scans' pushed-down filters
	// (RowsScanned still counts them; they were decoded to be judged).
	RowsFiltered int64
	// CacheHits/CacheMisses count this query's ranged reads served from
	// the object-store read cache vs reads that paid a store request.
	// Cache hits never reduce BytesScanned — the $/TB billing unit counts
	// bytes scanned, not bytes physically fetched.
	CacheHits   int64
	CacheMisses int64
}

// Add merges two stats.
func (s *Stats) Add(o Stats) {
	s.RowsReturned += o.RowsReturned
	s.RowsScanned += o.RowsScanned
	s.BytesScanned += o.BytesScanned
	s.BytesIntermediate += o.BytesIntermediate
	s.RowGroupsRead += o.RowGroupsRead
	s.RowGroupsPruned += o.RowGroupsPruned
	s.ColumnChunksSkipped += o.ColumnChunksSkipped
	s.RowsFiltered += o.RowsFiltered
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
}

// Result is a fully materialized query result.
type Result struct {
	Columns []string
	Types   []col.Type
	Rows    [][]col.Value
	Stats   Stats
	// Cached marks a result served from the result cache without touching
	// the object store. Stats then reports only RowsReturned (no scan
	// happened, so nothing was scanned or billed); Origin keeps the stats
	// of the execution that originally filled the cache entry.
	Cached bool
	Origin *Stats
}

// resultFromBatch converts an output batch. String values are detached
// from the batch's backing arrays: decoded string vectors alias per-chunk
// blobs (and callers may retain Results long after the query), so a small
// result must not pin chunk-sized buffers.
func resultFromBatch(schema *col.Schema, b *col.Batch, stats Stats) *Result {
	r := &Result{Stats: stats}
	for _, f := range schema.Fields {
		r.Columns = append(r.Columns, f.Name)
		r.Types = append(r.Types, f.Type)
	}
	for i := 0; i < b.N; i++ {
		row := b.Row(i)
		for c := range row {
			if row[c].Type == col.STRING && !row[c].Null {
				row[c].S = strings.Clone(row[c].S)
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Stats.RowsReturned = int64(b.N)
	return r
}

// PlanQuery parses nothing: it binds an already-parsed SELECT into an
// executable plan.
func (e *Engine) PlanQuery(db string, sel *sql.Select) (plan.Node, error) {
	return plan.NewBinder(e.cat, db).BindSelect(sel)
}

// Execute parses and runs any single statement against db. USE statements
// are rejected here: session state belongs to the caller.
func (e *Engine) Execute(ctx context.Context, db, text string) (*Result, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(ctx, db, stmt)
}

// ExecuteStmt runs a parsed statement.
func (e *Engine) ExecuteStmt(ctx context.Context, db string, stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		node, err := e.PlanQuery(db, s)
		if err != nil {
			return nil, err
		}
		return e.RunPlan(ctx, node)
	case *sql.Explain:
		inner, ok := s.Stmt.(*sql.Select)
		if !ok {
			return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
		}
		node, err := e.PlanQuery(db, inner)
		if err != nil {
			return nil, err
		}
		return explainResult(node), nil
	case *sql.CreateDatabase:
		return statusResult("CREATE DATABASE"), e.cat.CreateDatabase(s.Name)
	case *sql.DropDatabase:
		return statusResult("DROP DATABASE"), e.cat.DropDatabase(s.Name)
	case *sql.CreateTable:
		return statusResult("CREATE TABLE"), e.createTable(db, s)
	case *sql.DropTable:
		return statusResult("DROP TABLE"), e.dropTable(db, s)
	case *sql.Insert:
		n, err := e.insert(db, s)
		if err != nil {
			return nil, err
		}
		r := statusResult(fmt.Sprintf("INSERT %d", n))
		return r, nil
	case *sql.ShowDatabases:
		return e.showDatabases(), nil
	case *sql.ShowTables:
		return e.showTables(db)
	case *sql.Describe:
		return e.describe(db, s.Table)
	case *sql.Use:
		return nil, fmt.Errorf("engine: USE is handled by the client session")
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func statusResult(msg string) *Result {
	return &Result{
		Columns: []string{"status"},
		Types:   []col.Type{col.STRING},
		Rows:    [][]col.Value{{col.Str(msg)}},
	}
}

func explainResult(node plan.Node) *Result {
	r := &Result{Columns: []string{"plan"}, Types: []col.Type{col.STRING}}
	text := plan.Explain(node)
	for _, line := range splitLines(text) {
		r.Rows = append(r.Rows, []col.Value{col.Str(line)})
	}
	return r
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// RunPlan executes a plan locally (single process — the "VM side" path)
// and materializes the result.
func (e *Engine) RunPlan(ctx context.Context, node plan.Node) (*Result, error) {
	// Scope the query's scan pipelines to this call: whenever RunPlan
	// returns — success, error, or early abandonment of an operator — the
	// cancel releases any prefetch goroutines still in flight.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ctx, span := obs.StartSpan(ctx, "exec:serial")
	defer span.End()
	stats := &Stats{}
	op, err := exec.BuildWith(node, exec.BuildEnv{
		ScanFactory:  e.scanFactory(ctx, stats, nil, pipelineEligible(node)),
		Interpreted:  e.interp,
		FusedAggScan: e.fusedAggScan(ctx, stats, nil, pipelineEligible(node)),
		Span:         span,
	})
	if err != nil {
		return nil, err
	}
	out, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	span.SetAttr("rows_scanned", stats.RowsScanned)
	span.SetAttr("bytes_scanned", stats.BytesScanned)
	return resultFromBatch(node.Schema(), out, *stats), nil
}

// scanFactory builds per-scan batch streams. overrides maps a ScanNode to
// a replacement file list (used for CF partitioning and intermediate
// reads); nil means the table's own files. pipelined marks the scans that
// may run the asynchronous prefetch/decode pipeline — only scans proven to
// drain fully qualify (see pipelineEligible), everything else runs the
// synchronous lazy iterator so early-stopping plans bill the minimum.
func (e *Engine) scanFactory(ctx context.Context, stats *Stats, overrides map[*plan.ScanNode]scanOverride, pipelined map[*plan.ScanNode]bool) func(*plan.ScanNode) func() (exec.ScanStream, error) {
	return func(node *plan.ScanNode) func() (exec.ScanStream, error) {
		return func() (exec.ScanStream, error) {
			files := node.Table.Files
			interm := false
			if ov, ok := overrides[node]; ok {
				if ov.iter != nil {
					return exec.ScanStream{Iter: ov.iter}, nil
				}
				files = ov.files
				interm = ov.interm
			}
			sc := e.newScanContext(ctx, node, files, stats, interm)
			if !interm && pipelined[node] && e.prefetch > 0 {
				return exec.ScanStream{Iter: sc.pipelined(e.prefetch), Filtered: true}, nil
			}
			return exec.ScanStream{Iter: sc.sequential(), Filtered: true}, nil
		}
	}
}

type scanOverride struct {
	files  []catalog.FileMeta
	interm bool // files are CF worker intermediates, not base-table data
	// iter, when set, replaces file reading entirely: batches come from an
	// in-process stream (the parallel VM path) and no bytes are accounted.
	iter exec.BatchIterator
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// rangeReader builds the RangeReader a pixfile is opened with. When the
// store is fronted by a read cache (objstore.CachedRanger) each read also
// attributes a per-query cache hit or miss; the iterator that owns stats
// runs single-goroutine, so the increments need no synchronization.
func (e *Engine) rangeReader(key string, stats *Stats) pixfile.RangeReader {
	cr, ok := e.store.(objstore.CachedRanger)
	if !ok {
		return func(off, length int64) ([]byte, error) {
			return e.store.GetRange(key, off, length)
		}
	}
	return func(off, length int64) ([]byte, error) {
		data, hit, err := cr.GetRangeCached(key, off, length)
		if err == nil {
			if hit {
				stats.CacheHits++
			} else {
				stats.CacheMisses++
			}
		}
		return data, err
	}
}

// tableKeyPrefix is the object-store layout of a table.
func tableKeyPrefix(db, table string) string { return db + "/" + table + "/" }

// nextFileKey allocates a unique object key for a new table file.
func (e *Engine) nextFileKey(db, table string) string {
	e.mu.Lock()
	defer e.mu.Unlock()
	prefix := tableKeyPrefix(db, table)
	seq := e.fileSeq[prefix]
	e.fileSeq[prefix] = seq + 1
	return fmt.Sprintf("%sdata-%06d.pxl", prefix, seq)
}

// LoadBatch writes a batch as a new file of the table and registers it in
// the catalog. It is the bulk-load path used by the workload generator.
func (e *Engine) LoadBatch(db, table string, batch *col.Batch, opts pixfile.WriterOptions) error {
	t, err := e.cat.GetTable(db, table)
	if err != nil {
		return err
	}
	w := pixfile.NewWriter(t.Schema(), opts)
	if err := w.Append(batch); err != nil {
		return err
	}
	data, err := w.Finish()
	if err != nil {
		return err
	}
	key := e.nextFileKey(db, table)
	if err := e.store.Put(key, data); err != nil {
		return err
	}
	return e.cat.AddFiles(db, table, catalog.FileMeta{
		Key: key, Size: int64(len(data)), Rows: int64(batch.N),
	})
}
