package engine

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/pixfile"
	"repro/internal/plan"
)

// Wire format for CF worker fragments.
//
// A worker fragment crosses a process boundary, so the plan subtree a worker
// executes is serialized as a JSON tagged union. Only CF-safe fragments are
// encodable: scans, filters, projections, partial aggregation, top-N, sort
// and limit. Joins are rejected — RunWorker refuses shared-build splits for
// billing reasons, so a join can never appear in a worker fragment.
//
// The encoded ScanNode is self-contained: it embeds the table's column
// definitions rather than a catalog reference, and the worker receives its
// file partition separately in the WorkerRequest. A worker process therefore
// needs no catalog at all — just the store.

// wireNode is one serialized plan operator. Exactly the fields of its Kind
// are set; everything else stays at the zero value and is omitted.
type wireNode struct {
	Kind string `json:"kind"`

	// kind "scan"
	DB        string           `json:"db,omitempty"`
	TableName string           `json:"table,omitempty"`
	Columns   []catalog.Column `json:"columns,omitempty"`
	Binding   string           `json:"binding,omitempty"`
	Rel       int              `json:"rel,omitempty"`
	Cols      []int            `json:"cols,omitempty"`
	Filter    *wireExpr        `json:"filter,omitempty"`
	ZonePreds []wirePred       `json:"zone_preds,omitempty"`

	// single-input operators
	Child *wireNode `json:"child,omitempty"`

	// kind "filter"
	Cond *wireExpr `json:"cond,omitempty"`

	// kind "project"
	Exprs []*wireExpr `json:"exprs,omitempty"`
	Names []string    `json:"names,omitempty"`

	// kind "agg"
	GroupBy    []*wireExpr `json:"group_by,omitempty"`
	GroupNames []string    `json:"group_names,omitempty"`
	Aggs       []wireAgg   `json:"aggs,omitempty"`

	// kinds "topn" and "sort"
	Keys []plan.SortKey `json:"keys,omitempty"`
	N    int64          `json:"n,omitempty"`

	// kind "limit"
	Limit  int64 `json:"limit,omitempty"`
	Offset int64 `json:"offset,omitempty"`
}

// wirePred is a serialized zone-map predicate.
type wirePred struct {
	Col int           `json:"col"`
	Op  pixfile.CmpOp `json:"op"`
	Val col.Value     `json:"val"`
}

// wireAgg is a serialized plan.AggSpec.
type wireAgg struct {
	Func     plan.AggFunc `json:"func"`
	Arg      *wireExpr    `json:"arg,omitempty"`
	Distinct bool         `json:"distinct,omitempty"`
	Name     string       `json:"name"`
	Ty       col.Type     `json:"ty"`
}

// wireExpr is one serialized bound expression.
type wireExpr struct {
	Kind string `json:"kind"`

	// kind "lit"
	Val *col.Value `json:"val,omitempty"`

	// kind "col"
	Rel      int      `json:"rel,omitempty"`
	Idx      int      `json:"idx,omitempty"`
	Ordinal  int      `json:"ordinal,omitempty"`
	Name     string   `json:"name,omitempty"` // also kind "func"
	Ty       col.Type `json:"ty,omitempty"`
	Nullable bool     `json:"nullable,omitempty"`

	// kinds "unary", "binary"
	Op string    `json:"op,omitempty"`
	X  *wireExpr `json:"x,omitempty"` // also "isnull", "in", "cast"
	L  *wireExpr `json:"l,omitempty"`
	R  *wireExpr `json:"r,omitempty"`

	// kinds "isnull", "in"
	Not  bool        `json:"not,omitempty"`
	List []col.Value `json:"list,omitempty"`

	// kind "func"
	Args []*wireExpr `json:"args,omitempty"`

	// kind "case"
	Whens []wireWhen `json:"whens,omitempty"`
	Else  *wireExpr  `json:"else,omitempty"`

	// kind "cast"
	To col.Type `json:"to,omitempty"`
}

// wireWhen is one serialized CASE arm.
type wireWhen struct {
	Cond   *wireExpr `json:"cond"`
	Result *wireExpr `json:"result"`
}

// encodeNode serializes a worker-fragment plan subtree.
func encodeNode(n plan.Node) (*wireNode, error) {
	switch x := n.(type) {
	case *plan.ScanNode:
		w := &wireNode{
			Kind:      "scan",
			DB:        x.DB,
			TableName: x.Table.Name,
			Columns:   append([]catalog.Column(nil), x.Table.Columns...),
			Binding:   x.Binding,
			Rel:       x.Rel,
			Cols:      append([]int(nil), x.Cols...),
		}
		if x.Filter != nil {
			f, err := encodeExpr(x.Filter)
			if err != nil {
				return nil, err
			}
			w.Filter = f
		}
		for _, zp := range x.ZonePreds {
			w.ZonePreds = append(w.ZonePreds, wirePred{Col: zp.Col, Op: zp.Op, Val: zp.Val})
		}
		return w, nil
	case *plan.FilterNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		cond, err := encodeExpr(x.Cond)
		if err != nil {
			return nil, err
		}
		return &wireNode{Kind: "filter", Child: child, Cond: cond}, nil
	case *plan.ProjectNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		w := &wireNode{Kind: "project", Child: child, Names: append([]string(nil), x.Names...)}
		for _, e := range x.Exprs {
			we, err := encodeExpr(e)
			if err != nil {
				return nil, err
			}
			w.Exprs = append(w.Exprs, we)
		}
		return w, nil
	case *plan.AggNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		w := &wireNode{Kind: "agg", Child: child, GroupNames: append([]string(nil), x.GroupNames...)}
		for _, g := range x.GroupBy {
			wg, err := encodeExpr(g)
			if err != nil {
				return nil, err
			}
			w.GroupBy = append(w.GroupBy, wg)
		}
		for _, sp := range x.Aggs {
			wa := wireAgg{Func: sp.Func, Distinct: sp.Distinct, Name: sp.Name, Ty: sp.Ty}
			if sp.Arg != nil {
				arg, err := encodeExpr(sp.Arg)
				if err != nil {
					return nil, err
				}
				wa.Arg = arg
			}
			w.Aggs = append(w.Aggs, wa)
		}
		return w, nil
	case *plan.TopNNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &wireNode{Kind: "topn", Child: child, Keys: append([]plan.SortKey(nil), x.Keys...), N: x.N}, nil
	case *plan.SortNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &wireNode{Kind: "sort", Child: child, Keys: append([]plan.SortKey(nil), x.Keys...)}, nil
	case *plan.LimitNode:
		child, err := encodeNode(x.Child)
		if err != nil {
			return nil, err
		}
		return &wireNode{Kind: "limit", Child: child, Limit: x.Limit, Offset: x.Offset}, nil
	case *plan.JoinNode:
		return nil, fmt.Errorf("engine: join fragments cannot cross the worker process boundary")
	default:
		return nil, fmt.Errorf("engine: cannot serialize plan node %T", n)
	}
}

// decodeNode rebuilds the plan subtree. The returned tree is fully owned by
// the caller (no sharing with any other plan).
func decodeNode(w *wireNode) (plan.Node, error) {
	if w == nil {
		return nil, fmt.Errorf("engine: nil wire node")
	}
	decodeChild := func() (plan.Node, error) {
		if w.Child == nil {
			return nil, fmt.Errorf("engine: wire node %q missing child", w.Kind)
		}
		return decodeNode(w.Child)
	}
	switch w.Kind {
	case "scan":
		t := &catalog.Table{Name: w.TableName, Columns: append([]catalog.Column(nil), w.Columns...)}
		s := &plan.ScanNode{
			DB:      w.DB,
			Table:   t,
			Binding: w.Binding,
			Rel:     w.Rel,
			Cols:    append([]int(nil), w.Cols...),
		}
		for _, c := range s.Cols {
			if c < 0 || c >= len(t.Columns) {
				return nil, fmt.Errorf("engine: scan ordinal %d out of range for table %s", c, t.Name)
			}
		}
		if w.Filter != nil {
			f, err := decodeExpr(w.Filter)
			if err != nil {
				return nil, err
			}
			s.Filter = f
		}
		for _, zp := range w.ZonePreds {
			s.ZonePreds = append(s.ZonePreds, pixfile.ColPredicate{Col: zp.Col, Op: zp.Op, Val: zp.Val})
		}
		return s, nil
	case "filter":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		cond, err := decodeExpr(w.Cond)
		if err != nil {
			return nil, err
		}
		return &plan.FilterNode{Child: child, Cond: cond}, nil
	case "project":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		p := &plan.ProjectNode{Child: child, Names: append([]string(nil), w.Names...)}
		for _, we := range w.Exprs {
			e, err := decodeExpr(we)
			if err != nil {
				return nil, err
			}
			p.Exprs = append(p.Exprs, e)
		}
		if len(p.Exprs) != len(p.Names) {
			return nil, fmt.Errorf("engine: project has %d exprs, %d names", len(p.Exprs), len(p.Names))
		}
		return p, nil
	case "agg":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		a := &plan.AggNode{Child: child, GroupNames: append([]string(nil), w.GroupNames...)}
		for _, wg := range w.GroupBy {
			g, err := decodeExpr(wg)
			if err != nil {
				return nil, err
			}
			a.GroupBy = append(a.GroupBy, g)
		}
		if len(a.GroupBy) != len(a.GroupNames) {
			return nil, fmt.Errorf("engine: agg has %d group exprs, %d names", len(a.GroupBy), len(a.GroupNames))
		}
		for _, wa := range w.Aggs {
			sp := plan.AggSpec{Func: wa.Func, Distinct: wa.Distinct, Name: wa.Name, Ty: wa.Ty}
			if wa.Arg != nil {
				arg, err := decodeExpr(wa.Arg)
				if err != nil {
					return nil, err
				}
				sp.Arg = arg
			}
			a.Aggs = append(a.Aggs, sp)
		}
		return a, nil
	case "topn":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		return &plan.TopNNode{Child: child, Keys: append([]plan.SortKey(nil), w.Keys...), N: w.N}, nil
	case "sort":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		return &plan.SortNode{Child: child, Keys: append([]plan.SortKey(nil), w.Keys...)}, nil
	case "limit":
		child, err := decodeChild()
		if err != nil {
			return nil, err
		}
		return &plan.LimitNode{Child: child, Limit: w.Limit, Offset: w.Offset}, nil
	default:
		return nil, fmt.Errorf("engine: unknown wire node kind %q", w.Kind)
	}
}

// encodeExpr serializes a bound expression.
func encodeExpr(e plan.BoundExpr) (*wireExpr, error) {
	switch x := e.(type) {
	case *plan.BLit:
		v := x.Val
		return &wireExpr{Kind: "lit", Val: &v}, nil
	case *plan.BCol:
		return &wireExpr{
			Kind: "col", Rel: x.Rel, Idx: x.Idx, Ordinal: x.Ordinal,
			Name: x.Name, Ty: x.Ty, Nullable: x.Nullable,
		}, nil
	case *plan.BUnary:
		sub, err := encodeExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "unary", Op: x.Op, X: sub, Ty: x.Ty}, nil
	case *plan.BBinary:
		l, err := encodeExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "binary", Op: x.Op, L: l, R: r, Ty: x.Ty}, nil
	case *plan.BIsNull:
		sub, err := encodeExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "isnull", X: sub, Not: x.Not}, nil
	case *plan.BIn:
		sub, err := encodeExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "in", X: sub, List: append([]col.Value(nil), x.List...), Not: x.Not}, nil
	case *plan.BFunc:
		w := &wireExpr{Kind: "func", Name: x.Name, Ty: x.Ty}
		for _, a := range x.Args {
			wa, err := encodeExpr(a)
			if err != nil {
				return nil, err
			}
			w.Args = append(w.Args, wa)
		}
		return w, nil
	case *plan.BCase:
		w := &wireExpr{Kind: "case", Ty: x.Ty}
		for _, arm := range x.Whens {
			cond, err := encodeExpr(arm.Cond)
			if err != nil {
				return nil, err
			}
			res, err := encodeExpr(arm.Result)
			if err != nil {
				return nil, err
			}
			w.Whens = append(w.Whens, wireWhen{Cond: cond, Result: res})
		}
		if x.Else != nil {
			els, err := encodeExpr(x.Else)
			if err != nil {
				return nil, err
			}
			w.Else = els
		}
		return w, nil
	case *plan.BCast:
		sub, err := encodeExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &wireExpr{Kind: "cast", X: sub, To: x.To}, nil
	default:
		return nil, fmt.Errorf("engine: cannot serialize expression %T", e)
	}
}

// decodeExpr rebuilds a bound expression.
func decodeExpr(w *wireExpr) (plan.BoundExpr, error) {
	if w == nil {
		return nil, fmt.Errorf("engine: nil wire expression")
	}
	switch w.Kind {
	case "lit":
		if w.Val == nil {
			return nil, fmt.Errorf("engine: literal without a value")
		}
		return &plan.BLit{Val: *w.Val}, nil
	case "col":
		return &plan.BCol{
			Rel: w.Rel, Idx: w.Idx, Ordinal: w.Ordinal,
			Name: w.Name, Ty: w.Ty, Nullable: w.Nullable,
		}, nil
	case "unary":
		sub, err := decodeExpr(w.X)
		if err != nil {
			return nil, err
		}
		return &plan.BUnary{Op: w.Op, X: sub, Ty: w.Ty}, nil
	case "binary":
		l, err := decodeExpr(w.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(w.R)
		if err != nil {
			return nil, err
		}
		return &plan.BBinary{Op: w.Op, L: l, R: r, Ty: w.Ty}, nil
	case "isnull":
		sub, err := decodeExpr(w.X)
		if err != nil {
			return nil, err
		}
		return &plan.BIsNull{X: sub, Not: w.Not}, nil
	case "in":
		sub, err := decodeExpr(w.X)
		if err != nil {
			return nil, err
		}
		return &plan.BIn{X: sub, List: append([]col.Value(nil), w.List...), Not: w.Not}, nil
	case "func":
		f := &plan.BFunc{Name: w.Name, Ty: w.Ty}
		for _, wa := range w.Args {
			a, err := decodeExpr(wa)
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
		}
		return f, nil
	case "case":
		c := &plan.BCase{Ty: w.Ty}
		for _, arm := range w.Whens {
			cond, err := decodeExpr(arm.Cond)
			if err != nil {
				return nil, err
			}
			res, err := decodeExpr(arm.Result)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, plan.BWhen{Cond: cond, Result: res})
		}
		if w.Else != nil {
			els, err := decodeExpr(w.Else)
			if err != nil {
				return nil, err
			}
			c.Else = els
		}
		return c, nil
	case "cast":
		sub, err := decodeExpr(w.X)
		if err != nil {
			return nil, err
		}
		return &plan.BCast{X: sub, To: w.To}, nil
	default:
		return nil, fmt.Errorf("engine: unknown wire expression kind %q", w.Kind)
	}
}
