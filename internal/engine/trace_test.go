package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sql"
)

// planNode parses and plans q (a fresh node per run — plans are
// single-use).
func planNode(t *testing.T, e *Engine, q string) plan.Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatal(err)
	}
	return node
}

// tracedRun runs node under a fresh trace and returns the result plus the
// finished, snapshot span tree.
func tracedRun(t *testing.T, e *Engine, q string, width int) (*Result, *obs.SpanData) {
	t.Helper()
	tr := obs.NewTrace("trace-test", "query")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	res, err := e.RunPlanParallel(ctx, planNode(t, e, q), width)
	if err != nil {
		t.Fatalf("traced width %d %q: %v", width, q, err)
	}
	tr.Root().End()
	return res, tr.Data()
}

// countPrefix counts spans whose name starts with prefix.
func countPrefix(root *obs.SpanData, prefix string) int {
	if root == nil {
		return 0
	}
	n := 0
	if strings.HasPrefix(root.Name, prefix) {
		n++
	}
	for _, c := range root.Children {
		n += countPrefix(c, prefix)
	}
	return n
}

// TestTraceWellFormedSerialAndParallel runs the parallel battery at widths
// 1, 2 and 8 with tracing on, asserting (a) the span tree is well-formed
// (single named root, no negative durations, children within parents), (b)
// an exec-path span and operator spans were recorded, and (c) rows and
// stats are bit-identical to the same run without tracing.
func TestTraceWellFormedSerialAndParallel(t *testing.T) {
	e := newPartitionedEngine(t, 8, 400)
	for _, width := range []int{1, 2, 8} {
		for _, q := range parallelQueries {
			res, data := tracedRun(t, e, q, width)
			if err := obs.CheckWellFormed(data); err != nil {
				t.Fatalf("width %d %q: %v", width, q, err)
			}
			if n := countPrefix(data, "exec:"); n != 1 {
				t.Fatalf("width %d %q: %d exec spans, want 1", width, q, n)
			}
			if n := countPrefix(data, "op:"); n == 0 {
				t.Fatalf("width %d %q: no operator spans", width, q)
			}
			base, err := e.RunPlanParallel(context.Background(), planNode(t, e, q), width)
			if err != nil {
				t.Fatalf("untraced width %d %q: %v", width, q, err)
			}
			expectIdentical(t, q, base, res)
		}
	}
}

// TestTraceWellFormedPipelined is the same invariant with the scan
// prefetch pipeline on: prefetch goroutines deliver batches into spanned
// operators, and the tree must stay well-formed with identical results.
func TestTraceWellFormedPipelined(t *testing.T) {
	e := newPartitionedEngine(t, 8, 400)
	e.SetScanPrefetch(4)
	for _, width := range []int{1, 2, 8} {
		for _, q := range parallelQueries {
			res, data := tracedRun(t, e, q, width)
			if err := obs.CheckWellFormed(data); err != nil {
				t.Fatalf("pipelined width %d %q: %v", width, q, err)
			}
			base, err := e.RunPlanParallel(context.Background(), planNode(t, e, q), width)
			if err != nil {
				t.Fatalf("untraced pipelined width %d %q: %v", width, q, err)
			}
			expectIdentical(t, q, base, res)
		}
	}
}

// TestTraceDistributedSpans runs the multi-process path with tracing on:
// the tree must contain the exec:distributed span, one task span per
// partition, each task's winning attempt, and the worker-process fragment
// subtree shipped back over the wire and grafted under its attempt.
func TestTraceDistributedSpans(t *testing.T) {
	e, dir := newDiskEngine(t, 6, 500)
	proc := newProcessInvoker(dir)
	q := "SELECT f_cat, COUNT(*), SUM(f_val) FROM fact GROUP BY f_cat ORDER BY f_cat"
	serial := serialResult(t, e, q)
	for _, parts := range []int{2, 8} {
		distSeq++
		tr := obs.NewTrace("trace-dist", "query")
		ctx := obs.ContextWithTrace(context.Background(), tr)
		res, err := e.RunPlanDistributed(ctx, planNode(t, e, q), fmt.Sprintf("trace-dist-%d", distSeq),
			DistOptions{Parts: parts, Invoker: proc})
		if err != nil {
			t.Fatalf("parts %d: %v", parts, err)
		}
		tr.Root().End()
		data := tr.Data()
		if err := obs.CheckWellFormed(data); err != nil {
			t.Fatalf("parts %d: %v", parts, err)
		}
		execs := obs.FindSpans(data, "exec:distributed")
		if len(execs) != 1 {
			t.Fatalf("parts %d: %d exec:distributed spans", parts, len(execs))
		}
		n, ok := execs[0].Attrs["parts"].(int)
		if !ok || n < 2 {
			t.Fatalf("parts %d: exec span parts attr = %v", parts, execs[0].Attrs["parts"])
		}
		for i := 0; i < n; i++ {
			if got := len(obs.FindSpans(data, fmt.Sprintf("task:%d", i))); got != 1 {
				t.Fatalf("parts %d: task:%d spans = %d", parts, i, got)
			}
			if got := len(obs.FindSpans(data, fmt.Sprintf("fragment:t%d.a0", i))); got != 1 {
				t.Fatalf("parts %d: fragment:t%d.a0 spans = %d", parts, i, got)
			}
		}
		if got := countPrefix(data, "attempt:"); got != n {
			t.Fatalf("parts %d: %d attempt spans, want %d", parts, got, n)
		}
		if got := len(obs.FindSpans(data, "merge")); got != 1 {
			t.Fatalf("parts %d: merge spans = %d", parts, got)
		}
		expectDistMatchesSerial(t, q, serial, res)
	}
}

// TestTraceDistributedRetryEvents fails every task's first attempt: the
// task spans must record "retry" events, the winning attempt:1 spans must
// appear, losers must not leave open spans in the tree, and the retry
// counter must advance.
func TestTraceDistributedRetryEvents(t *testing.T) {
	e, _ := newDiskEngine(t, 6, 500)
	q := "SELECT COUNT(*), SUM(f_val) FROM fact"
	flaky := &flakyInvoker{engine: e, failAttempts: map[int]bool{0: true}}
	retriesBefore := obs.DistTaskRetriesTotal.Value()

	distSeq++
	tr := obs.NewTrace("trace-retry", "query")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	if _, err := e.RunPlanDistributed(ctx, planNode(t, e, q), fmt.Sprintf("trace-retry-%d", distSeq),
		DistOptions{Parts: 3, Invoker: flaky, Retries: 2}); err != nil {
		t.Fatal(err)
	}
	tr.Root().End()
	data := tr.Data()
	if err := obs.CheckWellFormed(data); err != nil {
		t.Fatal(err)
	}
	if flaky.injected() == 0 {
		t.Fatal("fault injection never fired — the test proved nothing")
	}
	if got := obs.DistTaskRetriesTotal.Value() - retriesBefore; got < 1 {
		t.Fatalf("retry counter advanced by %d, want >= 1", got)
	}
	retryEvents := 0
	for i := 0; ; i++ {
		tasks := obs.FindSpans(data, fmt.Sprintf("task:%d", i))
		if len(tasks) == 0 {
			break
		}
		for _, ev := range tasks[0].Events {
			if ev.Name == "retry" {
				retryEvents++
			}
		}
	}
	if retryEvents == 0 {
		t.Fatal("no retry events recorded on task spans")
	}
	if got := countPrefix(data, "attempt:1"); got == 0 {
		t.Fatal("no winning attempt:1 spans in the tree")
	}
}

// TestTraceDistributedRetryExhaustion fails every attempt: the error must
// name the swept intermediate attempt keys, the task span must carry a
// "retries-exhausted" event listing them, and the swept-keys counter must
// advance by the number of attempts.
func TestTraceDistributedRetryExhaustion(t *testing.T) {
	e, _ := newDiskEngine(t, 4, 400)
	q := "SELECT COUNT(*) FROM fact"
	flaky := &flakyInvoker{engine: e, failAttempts: map[int]bool{0: true, 1: true, 2: true}}
	sweptBefore := obs.DistTaskSweptKeysTotal.Value()

	distSeq++
	tr := obs.NewTrace("trace-exhaust", "query")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	_, err := e.RunPlanDistributed(ctx, planNode(t, e, q), fmt.Sprintf("trace-exhaust-%d", distSeq),
		DistOptions{Parts: 2, Invoker: flaky, Retries: 1})
	if err == nil {
		t.Fatal("all-attempts-fail run succeeded")
	}
	if !strings.Contains(err.Error(), "sweeping intermediates") {
		t.Fatalf("exhaustion error does not name swept keys: %v", err)
	}
	tr.Root().End()
	data := tr.Data()
	if err := obs.CheckWellFormed(data); err != nil {
		t.Fatal(err)
	}
	if obs.DistTaskSweptKeysTotal.Value()-sweptBefore < 2 {
		t.Fatal("swept-keys counter did not advance by the failed attempts")
	}
	exhausted := 0
	for i := 0; ; i++ {
		tasks := obs.FindSpans(data, fmt.Sprintf("task:%d", i))
		if len(tasks) == 0 {
			break
		}
		for _, ev := range tasks[0].Events {
			if ev.Name == "retries-exhausted" {
				exhausted++
				if ev.Attr["swept_keys"] == nil {
					t.Fatalf("retries-exhausted event carries no swept_keys: %+v", ev)
				}
			}
		}
	}
	if exhausted == 0 {
		t.Fatal("no retries-exhausted event recorded")
	}
}
