package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/objstore"
	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/vec"
)

// DefaultScanPrefetch is how many row groups ahead of the consumer a
// fully-draining base-table scan fetches and decodes by default.
const DefaultScanPrefetch = 4

// pipelineLive counts live scan-pipeline goroutines (producer + decode
// workers). It exists so tests can assert that cancellation mid-pipeline
// leaks nothing.
var pipelineLive atomic.Int64

// PipelineGoroutines reports the number of scan-pipeline goroutines
// currently alive across all engines in the process. Test hook.
func PipelineGoroutines() int64 { return pipelineLive.Load() }

// scanContext carries what one base-table (or intermediate) scan needs to
// turn (file, row group) pairs into filtered, compacted batches: the scan
// node (projection, pushed-down filter, zone-map predicates), the file
// list, and the stats accumulator owned by the consuming goroutine.
//
// The scan is filter-aware and late-materializing: for every surviving row
// group it decodes the filter's predicate columns first, evaluates the
// filter into a selection, and only fetches + decodes the remaining
// projected columns when at least one row survives. Zero-match row groups
// therefore cost exactly the predicate chunks; partially matching ones emit
// an already-compacted batch (survivors gathered), so no selection vector
// travels downstream.
type scanContext struct {
	e      *Engine
	ctx    context.Context
	node   *plan.ScanNode
	files  []catalog.FileMeta
	stats  *Stats
	interm bool

	predPos []int // positions in node.Cols the filter references
	restPos []int // the complement: decoded only for matching row groups

	// prog is the filter compiled to a selection-vector kernel program
	// (internal/vec); nil when vectorized evaluation is off or the
	// expression is outside the kernel set. The program is immutable and
	// shared by every decoder of the scan — per-run state lives in each
	// decoder's vec.Scratch.
	prog *vec.Program
}

func (e *Engine) newScanContext(ctx context.Context, node *plan.ScanNode, files []catalog.FileMeta, stats *Stats, interm bool) *scanContext {
	sc := &scanContext{e: e, ctx: ctx, node: node, files: files, stats: stats, interm: interm}
	if node.Filter == nil {
		return sc
	}
	pred := plan.FilterOrdinals(node.Filter)
	inPred := make(map[int]bool, len(pred))
	for _, p := range pred {
		if p < 0 || p >= len(node.Cols) {
			// Internal inconsistency (unfinalized ordinal): decode every
			// column up front rather than evaluating over a sparse batch.
			pred = nil
			for i := range node.Cols {
				pred = append(pred, i)
			}
			inPred = nil
			break
		}
		inPred[p] = true
	}
	sc.predPos = pred
	for i := range node.Cols {
		if inPred == nil || !inPred[i] {
			sc.restPos = append(sc.restPos, i)
		}
	}
	if inPred == nil {
		sc.restPos = nil
	}
	if !e.interp {
		sc.prog, _ = vec.Compile(node.Filter)
	}
	return sc
}

// account routes n scanned bytes to the proper stats bucket.
func account(st *Stats, interm bool, n int64) {
	if interm {
		st.BytesIntermediate += n
	} else {
		st.BytesScanned += n
	}
}

// chunkFetcher builds the per-read fetcher chunk reads go through: the
// engine's cache-attributing rangeReader plus scanned-bytes accounting.
// Everything lands in st, so a pipeline can give every row-group job its
// own accumulator and fold the totals deterministically on consumption.
func (sc *scanContext) chunkFetcher(key string, st *Stats) pixfile.RangeReader {
	fetch := sc.e.rangeReader(key, st)
	return func(off, length int64) ([]byte, error) {
		data, err := fetch(off, length)
		if err != nil {
			return nil, err
		}
		account(st, sc.interm, int64(len(data)))
		return data, nil
	}
}

// parsedFooter is the immutable value the engine caches in a store's
// ParsedFooterCache: the decoded footer plus its billed byte size.
type parsedFooter struct {
	footer *pixfile.Footer
	bytes  int64
}

// openPixfile opens one file, serving the decoded footer from the store's
// parsed-footer cache when available. Billed footer bytes are accounted
// identically on the hit and miss paths — the cache skips the fetch, the
// parse and the tail validation, never the bill.
func (sc *scanContext) openPixfile(meta catalog.FileMeta, st *Stats) (*pixfile.File, error) {
	fetch := sc.e.rangeReader(meta.Key, st)
	fc, hasFC := sc.e.store.(objstore.ParsedFooterCache)
	if hasFC {
		if v, ok := fc.ParsedFooter(meta.Key, meta.Size); ok {
			pf := v.(*parsedFooter)
			account(st, sc.interm, pf.bytes)
			return pixfile.OpenWithFooter(fetch, meta.Size, pf.footer, pf.bytes), nil
		}
	}
	f, err := pixfile.Open(fetch, meta.Size)
	if err != nil {
		return nil, fmt.Errorf("engine: open %s: %w", meta.Key, err)
	}
	account(st, sc.interm, f.FooterBytes())
	if hasFC {
		fc.StoreParsedFooter(meta.Key, meta.Size, &parsedFooter{footer: f.Footer(), bytes: f.FooterBytes()})
	}
	return f, nil
}

// rgDecoder turns one row group into a filtered batch. Each decoder owns
// per-column scratch buffers reused across the row groups it processes
// (one decoder per pipeline worker, or one for a whole sequential scan);
// buffers are detached whenever a decoded vector escapes into an emitted
// batch.
type rgDecoder struct {
	sc      *scanContext
	ev      *exec.Evaluator
	scratch []*pixfile.ChunkScratch
	vs      vec.Scratch // per-decoder state for the shared kernel program
}

func newRGDecoder(sc *scanContext) *rgDecoder {
	d := &rgDecoder{sc: sc}
	if sc.node.Filter != nil {
		d.ev = exec.NewEvaluator()
		d.scratch = make([]*pixfile.ChunkScratch, len(sc.node.Cols))
		for i := range d.scratch {
			d.scratch[i] = &pixfile.ChunkScratch{}
		}
	}
	return d
}

// decode reads row group g of f, evaluates the pushed-down filter and
// returns the compacted batch — nil when no row survives. Stats go to st
// (which may be a per-job accumulator, not the query total).
func (d *rgDecoder) decode(f *pixfile.File, key string, g int, st *Stats) (*col.Batch, error) {
	if err := d.sc.ctx.Err(); err != nil {
		return nil, err
	}
	sc := d.sc
	cols := sc.node.Cols
	fetch := sc.chunkFetcher(key, st)
	n := f.RowGroup(g).NumRows

	if sc.node.Filter == nil {
		vecs := make([]*col.Vector, len(cols))
		for i, c := range cols {
			v, err := f.ReadColumnChunkVia(fetch, g, c, nil)
			if err != nil {
				return nil, err
			}
			vecs[i] = v
		}
		st.RowsScanned += int64(n)
		st.RowGroupsRead++
		return &col.Batch{Vecs: vecs, N: n}, nil
	}

	vecs, dicts, sel, err := d.filterRowGroup(f, fetch, g, n)
	if err != nil {
		return nil, err
	}
	st.RowsScanned += int64(n)
	st.RowGroupsRead++
	st.RowsFiltered += int64(n - len(sel))
	if len(sel) == 0 {
		st.ColumnChunksSkipped += int64(len(sc.restPos))
		return nil, nil
	}
	if len(sel) < n && !sc.e.interp {
		// Selection pushdown into decode: payload columns materialize only
		// the surviving rows (run-skipping for RLE, direct indexing for
		// fixed-width, survivors-only blobs for strings). Chunk bytes
		// fetched — and billed — are identical to the full decode, and the
		// compacted batch matches decode+gather exactly. The sel-decoded
		// vectors escape with the batch, so their scratches detach; the
		// gathered predicate columns are copies, so theirs stay.
		for _, pos := range sc.restPos {
			v, err := f.ReadColumnChunkSelVia(fetch, g, cols[pos], sel, d.scratch[pos])
			if err != nil {
				return nil, err
			}
			vecs[pos] = v
			d.scratch[pos].Detach()
		}
		for _, pos := range sc.predPos {
			if dc, ok := dicts[pos]; ok {
				// Survivors translate straight through the dictionary —
				// fresh allocations, nothing aliases decoder scratch.
				vecs[pos] = gatherDict(dc, sel)
				continue
			}
			vecs[pos] = vecs[pos].Gather(sel)
		}
		return &col.Batch{Vecs: vecs, N: len(sel)}, nil
	}
	for _, pos := range sc.restPos {
		v, err := f.ReadColumnChunkVia(fetch, g, cols[pos], d.scratch[pos])
		if err != nil {
			return nil, err
		}
		vecs[pos] = v
	}
	if len(sel) == n {
		for pos, dc := range dicts {
			vecs[pos] = materializeDict(dc)
		}
		// The whole row group survives: the batch escapes downstream still
		// aliasing the scratch buffers, so detach them. Code-level chunks
		// were copied out above; their scratch (codes, validity) never
		// escapes and stays reusable.
		for pos, s := range d.scratch {
			if _, ok := dicts[pos]; ok {
				continue
			}
			s.Detach()
		}
		return &col.Batch{Vecs: vecs, N: n}, nil
	}
	return (&col.Batch{Vecs: vecs, N: n}).Gather(sel), nil
}

// sequential is the synchronous scan: one row group at a time, decoded on
// the consumer's goroutine. It is the path for scans that may stop early
// (LIMIT without a blocking operator) — it bills the lazy minimum.
func (sc *scanContext) sequential() exec.BatchIterator {
	dec := newRGDecoder(sc)
	fileIdx, rg := 0, 0
	var f *pixfile.File
	var key string
	return func() (*col.Batch, error) {
		for {
			if err := sc.ctx.Err(); err != nil {
				return nil, err
			}
			if f == nil {
				if fileIdx >= len(sc.files) {
					return nil, nil
				}
				meta := sc.files[fileIdx]
				fileIdx++
				opened, err := sc.openPixfile(meta, sc.stats)
				if err != nil {
					return nil, err
				}
				f, key, rg = opened, meta.Key, 0
			}
			if rg >= f.NumRowGroups() {
				f = nil
				continue
			}
			g := rg
			rg++
			if len(sc.node.ZonePreds) > 0 && f.PruneRowGroup(g, sc.node.ZonePreds) {
				sc.stats.RowGroupsPruned++
				continue
			}
			b, err := dec.decode(f, key, g, sc.stats)
			if err != nil {
				return nil, err
			}
			if b == nil || b.N == 0 {
				continue
			}
			return b, nil
		}
	}
}

// rgJob is one unit of pipeline work: a row group to decode, or a
// stats-only marker (footer accounting, pruned group). done is closed when
// batch/err/stats are final.
type rgJob struct {
	f    *pixfile.File
	key  string
	g    int
	done chan struct{}

	batch *col.Batch
	stats Stats
	err   error
}

// closedCh is a pre-closed channel for jobs that are born complete.
var closedCh = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// pipelined is the asynchronous scan: a producer walks files and row
// groups in order (opening footers and zone-pruning), decode workers fetch
// and decode up to `depth` row groups ahead, and the consumer receives
// batches strictly in file/row-group order — so results and stats are
// bit-identical to the sequential path, just overlapped.
//
// Billing stays deterministic because the pipeline is only used for scans
// that are provably drained to exhaustion (pipelineEligible): every
// prefetched chunk is consumed and accounted exactly once, in order, by
// the consumer folding each job's private stats into the query total.
// Goroutines exit when the scan is drained or sc.ctx is canceled — every
// query path wraps its context with a cancel scoped to the query.
func (sc *scanContext) pipelined(depth int) exec.BatchIterator {
	ordered := make(chan *rgJob, depth) // delivery order + in-flight bound
	work := make(chan *rgJob, depth)    // dispatch to decode workers

	send := func(ch chan<- *rgJob, j *rgJob) bool {
		select {
		case ch <- j:
			return true
		case <-sc.ctx.Done():
			return false
		}
	}

	// Producer: footers, pruning, job creation — metadata only, no chunk
	// I/O, so it runs far ahead of the decoders up to the channel bound.
	pipelineLive.Add(1)
	go func() {
		defer pipelineLive.Add(-1)
		defer close(work)
		defer close(ordered)
		for _, meta := range sc.files {
			var fst Stats
			f, err := sc.openPixfile(meta, &fst)
			if err != nil {
				j := &rgJob{done: closedCh, err: err}
				j.stats = fst
				send(ordered, j)
				return
			}
			if !send(ordered, &rgJob{done: closedCh, stats: fst}) {
				return
			}
			for g := 0; g < f.NumRowGroups(); g++ {
				if len(sc.node.ZonePreds) > 0 && f.PruneRowGroup(g, sc.node.ZonePreds) {
					if !send(ordered, &rgJob{done: closedCh, stats: Stats{RowGroupsPruned: 1}}) {
						return
					}
					continue
				}
				j := &rgJob{f: f, key: meta.Key, g: g, done: make(chan struct{})}
				if !send(ordered, j) || !send(work, j) {
					return
				}
			}
		}
	}()

	// Decode workers: each owns a decoder (and its scratch) and writes
	// results into the job before closing done. Worker 0 is exempt from the
	// process-wide prefetch budget so this scan always progresses; the rest
	// take a token per row-group decode, bounding the host's total decode
	// concurrency no matter how many pipelines overlap.
	workers := min(depth, runtime.NumCPU())
	if workers < 1 {
		workers = 1
	}
	budgetCh := prefetchBudgetCh()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		pipelineLive.Add(1)
		wg.Add(1)
		go func(exempt bool) {
			defer pipelineLive.Add(-1)
			defer wg.Done()
			dec := newRGDecoder(sc)
			for j := range work {
				if !exempt && budgetCh != nil {
					if !acquirePrefetchToken(sc.ctx, budgetCh) {
						j.err = sc.ctx.Err()
						close(j.done)
						continue
					}
				}
				j.batch, j.err = dec.decode(j.f, j.key, j.g, &j.stats)
				if !exempt && budgetCh != nil {
					releasePrefetchToken(budgetCh)
				}
				close(j.done)
			}
		}(w == 0)
	}

	// Consumer: runs on the query goroutine, folds stats in order.
	return func() (*col.Batch, error) {
		for {
			var j *rgJob
			var ok bool
			select {
			case j, ok = <-ordered:
			case <-sc.ctx.Done():
				return nil, sc.ctx.Err()
			}
			if !ok {
				return nil, nil
			}
			select {
			case <-j.done:
			case <-sc.ctx.Done():
				return nil, sc.ctx.Err()
			}
			sc.stats.Add(j.stats)
			if j.err != nil {
				return nil, j.err
			}
			if j.batch == nil || j.batch.N == 0 {
				continue
			}
			return j.batch, nil
		}
	}
}

// filterRowGroup decodes row group g's predicate columns and evaluates the
// pushed-down filter, returning the sparse column array (predicate
// positions populated), any code-level dictionary views keyed by position,
// and the surviving selection. The filter is evaluated over a sparse batch
// — only the predicate positions are populated, which is safe because the
// expression references exactly those ordinals. A string column the
// compiled program can judge entirely through dictionary-capable leaves
// stays at the code level: the chunk's dictionary and per-row codes are
// decoded (same fetch, same billed bytes), but no row string is
// materialized until the selection says which rows deserve one.
func (d *rgDecoder) filterRowGroup(f *pixfile.File, fetch pixfile.RangeReader, g, n int) ([]*col.Vector, map[int]*vec.DictCol, []int, error) {
	sc := d.sc
	cols := sc.node.Cols
	vecs := make([]*col.Vector, len(cols))
	var dicts map[int]*vec.DictCol
	useDict := sc.prog != nil && !sc.e.dictOff
	for _, pos := range sc.predPos {
		if useDict && sc.prog.DictEligible(pos) {
			v, dc, err := f.ReadColumnChunkDictVia(fetch, g, cols[pos], d.scratch[pos])
			if err != nil {
				return nil, nil, nil, err
			}
			if dc != nil {
				if dicts == nil {
					dicts = make(map[int]*vec.DictCol, 1)
				}
				dicts[pos] = &vec.DictCol{Dict: dc.Dict, Codes: dc.Codes, Valid: dc.Valid, N: dc.N}
				continue
			}
			// The chunk wasn't DICT-encoded after all; it decoded normally.
			vecs[pos] = v
			continue
		}
		v, err := f.ReadColumnChunkVia(fetch, g, cols[pos], d.scratch[pos])
		if err != nil {
			return nil, nil, nil, err
		}
		vecs[pos] = v
	}
	predBatch := &col.Batch{Vecs: vecs, N: n}
	var sel []int
	kernelRan := false
	if sc.prog != nil {
		// A nil selection with ok=true is a legitimate zero-match result
		// (distinct from the ok=false layout-mismatch fallback signal), so
		// branch on ok — re-evaluating through the interpreter would pay
		// the full per-row walk on exactly the zero-match row groups the
		// kernels are fastest on.
		if len(dicts) > 0 {
			sel, kernelRan = sc.prog.RunDict(predBatch, dicts, &d.vs)
		} else {
			sel, kernelRan = sc.prog.Run(predBatch, &d.vs)
		}
	}
	if !kernelRan {
		// Interpreter fallback needs real strings: materialize any
		// code-level chunks in full first.
		for pos, dc := range dicts {
			vecs[pos] = materializeDict(dc)
		}
		dicts = nil
		var err error
		if sel, err = d.ev.EvalBool(sc.node.Filter, predBatch); err != nil {
			return nil, nil, nil, err
		}
	}
	return vecs, dicts, sel, nil
}

// materializeDict turns a code-level dictionary chunk into the string
// vector the full decode would have produced: Valid present exactly when
// the chunk had nulls, null rows left at the zero value. All allocations
// are fresh — nothing aliases decoder scratch.
func materializeDict(dc *vec.DictCol) *col.Vector {
	v := col.NewVector(col.STRING, dc.N)
	if dc.Valid == nil {
		for i, c := range dc.Codes {
			v.Strs[i] = dc.Dict[c]
		}
		return v
	}
	v.Valid = append([]bool(nil), dc.Valid...)
	for i, c := range dc.Codes {
		if dc.Valid[i] {
			v.Strs[i] = dc.Dict[c]
		}
	}
	return v
}

// gatherDict materializes only the surviving rows of a dictionary chunk,
// matching Vector.Gather over the full decode bit for bit: the validity
// mask appears only when a selected row is null.
func gatherDict(dc *vec.DictCol, sel []int) *col.Vector {
	out := col.NewVector(col.STRING, len(sel))
	anyNull := false
	for i, j := range sel {
		if dc.Valid != nil && !dc.Valid[j] {
			if !anyNull {
				out.Valid = make([]bool, len(sel))
				for k := 0; k < i; k++ {
					out.Valid[k] = true
				}
				anyNull = true
			}
			continue
		}
		if anyNull {
			out.Valid[i] = true
		}
		out.Strs[i] = dc.Dict[dc.Codes[j]]
	}
	return out
}

// pipelineEligible returns the scans of the plan that are guaranteed to be
// drained to exhaustion — the precondition for prefetching row groups
// ahead of consumption. A scan under a LIMIT with no blocking operator in
// between may stop early; prefetching there would inflate BytesScanned
// (the billing unit) by however far the pipeline ran ahead, and make it
// timing-dependent. Those scans run sequentially instead.
func pipelineEligible(root plan.Node) map[*plan.ScanNode]bool {
	out := make(map[*plan.ScanNode]bool)
	for _, s := range plan.Scans(root) {
		if drainsFully(root, s) {
			out[s] = true
		}
	}
	return out
}
