package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/pixfile"
	"repro/internal/plan"
	"repro/internal/sql"
)

// findAggOverScan walks a plan for the fused-path shape: an AggNode whose
// child is a ScanNode.
func findAggOverScan(n plan.Node) (*plan.AggNode, *plan.ScanNode) {
	if agg, ok := n.(*plan.AggNode); ok {
		if scan, ok := agg.Child.(*plan.ScanNode); ok {
			return agg, scan
		}
	}
	for _, c := range n.Children() {
		if agg, scan := findAggOverScan(c); agg != nil {
			return agg, scan
		}
	}
	return nil, nil
}

func planFor(t *testing.T, e *Engine, q string) plan.Node {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	node, err := e.PlanQuery("db", stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return node
}

// fusedAggQueries pair every fusable aggregate kind (COUNT(*) incl. NULLs,
// COUNT, SUM/AVG over ints and floats, MIN/MAX over ints, floats and
// strings) with filterless, dictionary-eligible, NULL-dominated, partial and
// zero-match predicates.
var fusedAggQueries = []string{
	"SELECT COUNT(*) FROM nh",
	"SELECT COUNT(*), COUNT(n_a), SUM(n_a), AVG(n_b), MIN(n_s), MAX(n_s) FROM nh",
	"SELECT SUM(n_key), MIN(n_b), MAX(n_b), AVG(n_a) FROM nh WHERE n_s LIKE 'wo%'",
	"SELECT COUNT(*), MIN(n_key), MAX(n_key), COUNT(n_b) FROM nh WHERE n_s LIKE '%or%'",
	"SELECT COUNT(n_s), MIN(n_s), MAX(n_s), SUM(n_a) FROM nh WHERE n_s IN ('word-1', 'wo-4', '')",
	"SELECT COUNT(*), SUM(n_key), AVG(n_b) FROM nh WHERE n_a IS NULL",
	"SELECT COUNT(*), SUM(n_a), MIN(n_s), MAX(n_b) FROM nh WHERE n_key < 0",
	"SELECT AVG(n_a), AVG(n_b), MIN(n_a), MAX(n_a) FROM nh WHERE n_a % 3 = 1 AND n_s LIKE '%-3'",
}

// TestFusedAggEquivalence: for every fusable aggregate shape, the fused
// kernels must be bit-identical — rows, billed bytes, scan stats — to both
// the unfused vectorized path and the row-at-a-time interpreter, across
// synchronous, pipelined and parallel execution at widths 1/2/8.
func TestFusedAggEquivalence(t *testing.T) {
	e := newNullHeavyEngine(t)
	for _, q := range fusedAggQueries {
		e.SetVectorized(false)
		interp := runVecEquivQuery(t, e, q)
		e.SetVectorized(true)

		e.fusedOff, e.dictOff = true, true
		unfused := runVecEquivQuery(t, e, q)
		e.fusedOff, e.dictOff = false, false
		fused := runVecEquivQuery(t, e, q)

		base := interp[0]
		rest := append(append(interp[1:], unfused...), fused...)
		for i, res := range rest {
			label := fmt.Sprintf("%s variant %d", q, i)
			gb, wb := rowsAsStrings(res), rowsAsStrings(base)
			if len(gb) != len(wb) {
				t.Fatalf("%s: %d rows vs %d", label, len(gb), len(wb))
			}
			for j := range gb {
				if gb[j] != wb[j] {
					t.Fatalf("%s: row %d %q vs %q", label, j, gb[j], wb[j])
				}
			}
			if res.Stats.BytesScanned != base.Stats.BytesScanned {
				t.Fatalf("%s: billed bytes %d vs %d", label, res.Stats.BytesScanned, base.Stats.BytesScanned)
			}
			if res.Stats.RowsScanned != base.Stats.RowsScanned ||
				res.Stats.RowsFiltered != base.Stats.RowsFiltered ||
				res.Stats.ColumnChunksSkipped != base.Stats.ColumnChunksSkipped ||
				res.Stats.RowGroupsPruned != base.Stats.RowGroupsPruned {
				t.Fatalf("%s: scan stats diverge: %+v vs %+v", label, res.Stats, base.Stats)
			}
		}
	}
}

// TestFusedAggEmptyTable: the fused path must reproduce HashAgg's
// empty-global-input row (COUNT = 0, everything else NULL).
func TestFusedAggEmptyTable(t *testing.T) {
	e := newNullHeavyEngine(t)
	ctx := context.Background()
	if _, err := e.Execute(ctx, "db", "CREATE TABLE et (e_a BIGINT, e_b DOUBLE, e_s VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT COUNT(*), COUNT(e_a), SUM(e_a), AVG(e_b), MIN(e_s), MAX(e_b) FROM et"
	e.SetVectorized(false)
	base, err := e.Execute(ctx, "db", q)
	if err != nil {
		t.Fatal(err)
	}
	e.SetVectorized(true)
	got, err := e.Execute(ctx, "db", q)
	if err != nil {
		t.Fatal(err)
	}
	gb, wb := rowsAsStrings(got), rowsAsStrings(base)
	if len(gb) != 1 || len(wb) != 1 || gb[0] != wb[0] {
		t.Fatalf("empty-table aggregate: fused %q vs interpreted %q", gb, wb)
	}
}

// TestFusedAggDistributed runs a fused-shape aggregate through the
// multi-process coordinator path (store shuffle, partial aggregation with
// AVG reconstruction) and pins serial-identical rows and billing.
func TestFusedAggDistributed(t *testing.T) {
	e := newNullHeavyEngine(t)
	for _, q := range []string{
		"SELECT COUNT(*), SUM(n_key), SUM(n_a), AVG(n_b), MIN(n_s), MAX(n_s) FROM nh WHERE n_s LIKE '%or%'",
		"SELECT COUNT(n_a), MIN(n_b), MAX(n_key), AVG(n_a) FROM nh",
	} {
		serial := serialResult(t, e, q)
		for _, width := range []int{1, 2, 8} {
			dist := runDist(t, e, q, DistOptions{Parts: width, Invoker: &LocalInvoker{Engine: e}})
			expectDistMatchesSerial(t, fmt.Sprintf("%s @%d", q, width), serial, dist)
		}
	}
}

// TestFusableAggDecides pins which plan shapes compile to fused kernels and
// which must keep the interpreter's HashAggOp.
func TestFusableAggDecides(t *testing.T) {
	e := newNullHeavyEngine(t)
	cases := []struct {
		q    string
		want bool
	}{
		{"SELECT COUNT(*) FROM nh", true},
		{"SELECT SUM(n_a), AVG(n_b), MIN(n_s), MAX(n_key) FROM nh WHERE n_key > 5", true},
		{"SELECT n_flag, COUNT(*) FROM nh GROUP BY n_flag", false}, // grouped
		{"SELECT COUNT(DISTINCT n_a) FROM nh", false},              // distinct
		{"SELECT SUM(n_a + 1) FROM nh", false},                     // expression arg
		{"SELECT MIN(n_flag) FROM nh", false},                      // BOOL extremum
	}
	for _, c := range cases {
		agg, scan := findAggOverScan(planFor(t, e, c.q))
		if agg == nil {
			if c.want {
				t.Fatalf("%s: no agg-over-scan shape in plan", c.q)
			}
			continue
		}
		if got := fusableAgg(agg, scan); got != c.want {
			t.Fatalf("%s: fusableAgg = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestFusedAggHookGating: the BuildEnv hook must produce an operator for a
// fusable plan, and decline under the interpreter and the -fused-off knob —
// the forced-fallback path every fused node kind must keep working through.
func TestFusedAggHookGating(t *testing.T) {
	e := newNullHeavyEngine(t)
	agg, scan := findAggOverScan(planFor(t, e, "SELECT COUNT(*), SUM(n_a) FROM nh WHERE n_s LIKE 'wo%'"))
	if agg == nil {
		t.Fatal("no agg-over-scan shape")
	}
	var stats Stats
	ctx := context.Background()
	if _, ok := e.fusedAggScan(ctx, &stats, nil, nil)(agg, scan); !ok {
		t.Fatal("hook declined a fusable aggregate")
	}
	e.fusedOff = true
	if _, ok := e.fusedAggScan(ctx, &stats, nil, nil)(agg, scan); ok {
		t.Fatal("hook fused despite fusedOff")
	}
	e.fusedOff = false
	e.interp = true
	if _, ok := e.fusedAggScan(ctx, &stats, nil, nil)(agg, scan); ok {
		t.Fatal("hook fused despite interpreted mode")
	}
}

// TestNullHeavyFixtureHasDictChunks guards the fixture the dictionary tests
// lean on: n_s must actually be DICT-encoded on disk, so the equivalence
// batteries exercise code-level predicate evaluation rather than silently
// falling back to full decode.
func TestNullHeavyFixtureHasDictChunks(t *testing.T) {
	e := newNullHeavyEngine(t)
	tab := mustTable(t, e, "nh")
	dict := 0
	for _, fm := range tab.Files {
		data, err := e.Store().Get(fm.Key)
		if err != nil {
			t.Fatal(err)
		}
		f, err := pixfile.OpenBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < f.NumRowGroups(); g++ {
			if f.RowGroup(g).Chunks[3].Encoding == pixfile.EncDict { // n_s
				dict++
			}
		}
	}
	if dict == 0 {
		t.Fatal("fixture has no DICT-encoded n_s chunks")
	}
}
