package engine

import (
	"testing"
)

// The v2 benchmarks reuse the selective-scan fixture and measure the two
// PR-over-PR deltas of vectorized execution v2 against the v1 baseline
// (kernels on, fused aggregation and dictionary predicates off):
//
//   - FusedAgg*: the group-free filtered aggregates of the selective-scan
//     battery, which v2 folds during chunk decode instead of materializing
//     batches into HashAggOp.
//   - DictPredicate*: string predicates over the DICT-coded s_tag column,
//     which v2 evaluates once per dictionary entry at code level instead of
//     once per row over materialized strings.

// benchV2Off runs fn with the v2 paths disabled — the prior-PR baseline.
func benchV2Off(b *testing.B, e *Engine, fn func()) {
	e.fusedOff, e.dictOff = true, true
	defer func() { e.fusedOff, e.dictOff = false, false }()
	fn()
}

// ScanAgg-style group-free filtered aggregates. The 1% shape filters on the
// DICT tag column (v2 evaluates it at code level; the baseline decodes and
// compares half a million strings); the 50% shape keeps half of every row
// group, so the baseline's cost is gathering survivors into batches and
// driving six aggregate states row-at-a-time through HashAggOp while v2
// folds the same survivors in typed loops during decode.
const (
	fusedQuery1pct = `SELECT COUNT(*), SUM(s_a), SUM(s_b), MIN(s_seq), MAX(s_seq), AVG(s_a)
		FROM sel WHERE s_tag LIKE '%it%'`
	fusedQuery50pct = `SELECT COUNT(*), SUM(s_a), SUM(s_b), MIN(s_seq), MAX(s_seq), AVG(s_a)
		FROM sel WHERE s_seq % 2 = 0`
)

func BenchmarkFusedAgg1pct(b *testing.B) { benchSelectiveScan(b, fusedQuery1pct) }

func BenchmarkFusedAgg1pctV2Off(b *testing.B) {
	e, _, _ := selBenchEngines(b)
	benchV2Off(b, e, func() { benchSelectiveScan(b, fusedQuery1pct) })
}

func BenchmarkFusedAgg50pct(b *testing.B) { benchSelectiveScan(b, fusedQuery50pct) }

func BenchmarkFusedAgg50pctV2Off(b *testing.B) {
	e, _, _ := selBenchEngines(b)
	benchV2Off(b, e, func() { benchSelectiveScan(b, fusedQuery50pct) })
}

// Dictionary-predicate query: contains-LIKE over the two-entry DICT tag
// column, which zone maps cannot prune. The predicate dominates — ~1% of
// row groups survive, so payload decodes rarely. DictOff forces the
// baseline: decode every tag string, run the LIKE kernel once per row.
const dictQuery1pct = `SELECT COUNT(*), SUM(s_b) FROM sel WHERE s_tag LIKE '%it%'`

func BenchmarkDictPredicate1pct(b *testing.B) { benchSelectiveScan(b, dictQuery1pct) }

func BenchmarkDictPredicate1pctDictOff(b *testing.B) {
	e, _, _ := selBenchEngines(b)
	e.dictOff = true
	defer func() { e.dictOff = false }()
	benchSelectiveScan(b, dictQuery1pct)
}
