package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallelism budget is a process-wide semaphore over intra-query
// parallel workers — the RunPlanParallel counterpart of the scan-prefetch
// budget. Without it, per-query width is fixed at request time and the
// host's total worker count is the product of width × concurrent queries;
// with it, at most `budget` extra workers exist at any instant across all
// engines in the process, so overlapping queries divide the host instead
// of oversubscribing it.
//
// Deadlock-freedom: the first worker of every query is exempt (a query
// never blocks on the budget — acquisition is non-blocking and a failed
// acquire just narrows the query), and tokens are held for the duration of
// one query's parallel phase, released unconditionally when it ends.
// Narrowing never changes results: partitions are contiguous file ranges
// merged in task order, so any width produces the serial plan's output.

// DefaultParallelBudget is the token count the process starts with: one
// per CPU, the point past which extra concurrent workers only thrash.
var DefaultParallelBudget = runtime.NumCPU()

var parallelBudget = struct {
	mu sync.RWMutex
	ch chan struct{} // nil = unlimited

	inUse     atomic.Int64
	highWater atomic.Int64
}{ch: make(chan struct{}, DefaultParallelBudget)}

// SetParallelBudget resizes the process-wide parallelism budget: n > 0
// sets the token count, 0 restores DefaultParallelBudget, negative removes
// the bound entirely. Queries already running finish against the budget
// they acquired under.
func SetParallelBudget(n int) {
	var ch chan struct{}
	switch {
	case n == 0:
		ch = make(chan struct{}, DefaultParallelBudget)
	case n > 0:
		ch = make(chan struct{}, n)
	}
	parallelBudget.mu.Lock()
	parallelBudget.ch = ch
	parallelBudget.mu.Unlock()
}

// parallelBudgetCh snapshots the current semaphore; acquire and release
// must use the same snapshot so a concurrent SetParallelBudget cannot
// unbalance it.
func parallelBudgetCh() chan struct{} {
	parallelBudget.mu.RLock()
	defer parallelBudget.mu.RUnlock()
	return parallelBudget.ch
}

// acquireParallelWidth grants a query between 1 and want workers: the
// first is free, each additional one costs a token, and acquisition never
// blocks — when the pool is dry the query simply runs narrower. The
// returned release frees exactly what was granted.
func acquireParallelWidth(want int) (int, func()) {
	ch := parallelBudgetCh()
	if ch == nil || want <= 1 {
		return want, func() {}
	}
	granted := 1
	for granted < want {
		select {
		case ch <- struct{}{}:
		default:
			extra := granted - 1
			return granted, func() { releaseParallelTokens(ch, extra) }
		}
		v := parallelBudget.inUse.Add(1)
		for {
			hw := parallelBudget.highWater.Load()
			if v <= hw || parallelBudget.highWater.CompareAndSwap(hw, v) {
				break
			}
		}
		granted++
	}
	extra := granted - 1
	return granted, func() { releaseParallelTokens(ch, extra) }
}

func releaseParallelTokens(ch chan struct{}, n int) {
	for i := 0; i < n; i++ {
		parallelBudget.inUse.Add(-1)
		<-ch
	}
}

// ParallelBudgetHighWater reports the maximum number of simultaneously
// held parallelism tokens since the last reset. Test hook.
func ParallelBudgetHighWater() int64 { return parallelBudget.highWater.Load() }

// ResetParallelBudgetStats clears the high-water mark. Test hook.
func ResetParallelBudgetStats() { parallelBudget.highWater.Store(0) }
