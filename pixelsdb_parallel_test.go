package pixelsdb

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/workload"
)

// TestMixedLevelsWithParallelExecutor floods the coordinator with queries
// at all three service levels while the VM side runs the intra-query
// parallel executor, then checks every query's stats and bill against the
// serial engine path. Service-level scheduling decides where each query
// runs; the engine's parallelism must never change what gets billed.
func TestMixedLevelsWithParallelExecutor(t *testing.T) {
	db, err := Open(Options{
		Parallelism: 4,
		InitialVMs:  8, // 32 slots: everything fits on VMs, no CF fallback
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Many small files so the dominant scans actually partition.
	if err := workload.Load(db.Engine(), "tpch", workload.LoadOptions{SF: 0.005, Seed: 11, RowsPerFile: 2000}); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM lineitem",
		"SELECT l_returnflag, COUNT(*) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag",
		"SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000",
		"SELECT COUNT(DISTINCT o_custkey) FROM orders",
	}
	// Serial references, computed outside the scheduler.
	refs := make(map[string]*Result)
	for _, q := range queries {
		res, err := db.Execute(context.Background(), "tpch", q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		refs[q] = res
	}

	levels := []Level{Immediate, Relaxed, BestEffort}
	type submitted struct {
		q     *Query
		sql   string
		level Level
	}
	var subs []submitted
	for round := 0; round < 2; round++ {
		for _, sqlText := range queries {
			for _, level := range levels {
				q, err := db.Submit("tpch", sqlText, level)
				if err != nil {
					t.Fatalf("submit %q @%s: %v", sqlText, level, err)
				}
				subs = append(subs, submitted{q, sqlText, level})
			}
		}
	}
	for _, s := range subs {
		select {
		case <-s.q.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("%s %q timed out", s.level, s.sql)
		}
		if err := s.q.Err(); err != nil {
			t.Fatalf("%s %q failed: %v", s.level, s.sql, err)
		}
	}

	bills := make(map[string]billing.QueryBill)
	for _, b := range db.Ledger().All() {
		bills[b.QueryID] = b
	}
	book := db.PriceBook()
	for _, s := range subs {
		ref := refs[s.sql]
		res := s.q.Result()
		if s.q.UsedCF() {
			t.Fatalf("%s %q fell back to CF; the test needs VM runs", s.level, s.sql)
		}
		if res.Stats != ref.Stats {
			t.Errorf("%s %q stats = %+v, serial path %+v", s.level, s.sql, res.Stats, ref.Stats)
		}
		if fmt.Sprint(res.Rows) != fmt.Sprint(ref.Rows) {
			t.Errorf("%s %q rows diverged from serial path", s.level, s.sql)
		}
		bill, ok := bills[s.q.ID]
		if !ok {
			t.Fatalf("no bill for %s", s.q.ID)
		}
		if bill.BytesScanned != ref.Stats.BytesScanned {
			t.Errorf("%s %q billed %d bytes, serial path scanned %d", s.level, s.sql, bill.BytesScanned, ref.Stats.BytesScanned)
		}
		if want := book.ListPrice(s.level, ref.Stats.BytesScanned); bill.ListPrice != want {
			t.Errorf("%s %q list price %v, want %v", s.level, s.sql, bill.ListPrice, want)
		}
	}
}
