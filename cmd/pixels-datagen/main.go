// pixels-datagen generates the TPC-H-derived sample dataset into a data
// directory that pixels-server can serve.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/objstore"
	"repro/internal/workload"
)

func main() {
	var (
		dataDir  = flag.String("data", "./pixels-data", "output data directory")
		database = flag.String("db", "tpch", "database name")
		sf       = flag.Float64("sf", 0.05, "scale factor (1.0 = 15k customers, 150k orders)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	disk, err := objstore.NewDisk(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	cat := catalog.New()
	if err := cat.Load(disk); err != nil {
		log.Fatal(err)
	}
	eng := engine.New(cat, disk)

	sz := workload.SizesAt(*sf)
	fmt.Printf("generating %s at SF %.3f (%d customers, %d orders, ~%d lineitems)...\n",
		*database, *sf, sz.Customers, sz.Orders, sz.Orders*4)
	if err := workload.Load(eng, *database, workload.LoadOptions{SF: *sf, Seed: *seed}); err != nil {
		log.Fatal(err)
	}
	if err := cat.Save(disk); err != nil {
		log.Fatal(err)
	}

	tables, err := cat.ListTables(*database)
	if err != nil {
		log.Fatal(err)
	}
	var totalBytes, totalRows int64
	for _, tn := range tables {
		t, err := cat.GetTable(*database, tn)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %10d rows %12d bytes %3d files\n", tn, t.RowCount(), t.TotalBytes(), len(t.Files))
		totalBytes += t.TotalBytes()
		totalRows += t.RowCount()
	}
	fmt.Printf("done: %d rows, %.2f MB in %s\n", totalRows, float64(totalBytes)/1e6, *dataDir)
}
