// pixels-cli is the terminal Pixels-Rover: it talks to a running
// pixels-server to translate questions, submit queries at a service level,
// poll results, and view the cost report.
//
// Usage:
//
//	pixels-cli [-server URL] [-db NAME] <command> [args]
//
// Commands:
//
//	schemas                         show the schema browser
//	ask <question>                  translate a question to SQL
//	run <level> <sql>               submit SQL and wait for the result
//	nlrun <level> <question>        translate, submit and wait
//	status <query-id>               show a query's status block
//	cancel <query-id>               cancel a pending query
//	result <query-id>               show a query's result block
//	trace <query-id>                show a query's span waterfall (server needs -trace)
//	report                          per-level summary + recent queries
//	prices                          show the service-level price table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rover"
)

func main() {
	var (
		serverURL = flag.String("server", "http://localhost:8866", "query server URL")
		database  = flag.String("db", "tpch", "database")
		token     = flag.String("token", "", "bearer token")
		timeout   = flag.Duration("timeout", time.Minute, "wait timeout for run/nlrun")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := rover.NewClient(*serverURL)
	c.Token = *token

	switch args[0] {
	case "schemas":
		schemas, err := c.Schemas()
		check(err)
		for _, d := range schemas.Databases {
			fmt.Printf("%s\n", d.Name)
			for _, t := range d.Tables {
				cols := make([]string, len(t.Columns))
				for i, col := range t.Columns {
					cols[i] = col.Name + " " + col.Type
				}
				fmt.Printf("  %s (%d rows): %s\n", t.Name, t.Rows, strings.Join(cols, ", "))
			}
		}

	case "ask":
		need(args, 2, "ask <question>")
		tr, err := c.Translate(*database, strings.Join(args[1:], " "))
		check(err)
		fmt.Printf("-- %s (confidence %.2f)\n%s\n", tr.Translator, tr.Confidence, tr.SQL)

	case "run":
		need(args, 3, "run <level> <sql>")
		runAndPrint(c, *database, args[1], strings.Join(args[2:], " "), *timeout)

	case "nlrun":
		need(args, 3, "nlrun <level> <question>")
		tr, err := c.Translate(*database, strings.Join(args[2:], " "))
		check(err)
		fmt.Printf("-- translated by %s (confidence %.2f):\n%s\n\n", tr.Translator, tr.Confidence, tr.SQL)
		runAndPrint(c, *database, args[1], tr.SQL, *timeout)

	case "status":
		need(args, 2, "status <query-id>")
		info, err := c.Status(args[1])
		check(err)
		fmt.Printf("%s: %s level=%s pending=%dms exec=%dms usedCF=%v coalesced=%v %s\n",
			info.ID, info.Status, info.Level, info.PendingMs, info.ExecMs, info.UsedCF, info.Coalesced, info.Error)

	case "cancel":
		need(args, 2, "cancel <query-id>")
		check(c.Cancel(args[1]))
		fmt.Printf("%s canceled\n", args[1])

	case "result":
		need(args, 2, "result <query-id>")
		res, err := c.Result(args[1])
		check(err)
		printResult(res.Columns, res.Rows)
		fmt.Printf("-- scanned %d bytes (cache %d hit / %d miss), list price $%.9f, resource cost $%.9f\n",
			res.BytesScanned, res.CacheHits, res.CacheMisses, res.ListPrice, res.ResourceCost)

	case "trace":
		need(args, 2, "trace <query-id>")
		tr, err := c.TraceV1(args[1])
		check(err)
		if tr.Root == nil {
			log.Fatalf("query %s has no trace", args[1])
		}
		printSpan(tr.Root, tr.Root.StartUnix, 0)

	case "report":
		sum, err := c.ReportSummary()
		check(err)
		fmt.Printf("%-14s %8s %8s %8s %14s %14s %12s %12s\n",
			"level", "queries", "finished", "failed", "list $", "resource $", "avg pending", "max pending")
		for _, s := range sum {
			fmt.Printf("%-14s %8d %8d %8d %14.9f %14.9f %11dms %11dms\n",
				s.Level, s.Queries, s.Finished, s.Failed, s.ListPrice, s.ResourceCost,
				s.AvgPendingMs, s.MaxPendingMs)
		}
		bills, err := c.ReportQueries(time.Now().Add(-time.Hour), time.Now())
		check(err)
		fmt.Printf("\nrecent queries: %d in the last hour\n", len(bills))

	case "prices":
		pb, err := c.PriceBook()
		check(err)
		for _, l := range pb.Levels {
			fmt.Printf("%-14s $%.2f/TB  (%s)\n", l.Level, l.USDPerTB, l.Guarantee)
		}
		fmt.Printf("CF vs VM unit price ratio: %.1fx\n", pb.CFvsVMUnitPriceRatio)

	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func runAndPrint(c *rover.Client, db, level, sqlText string, timeout time.Duration) {
	resp, err := c.Submit(db, sqlText, level, 0)
	check(err)
	fmt.Printf("-- submitted %s at %s\n", resp.ID, resp.Level)
	info, err := c.WaitFinished(resp.ID, timeout)
	check(err)
	if info.Status != "finished" {
		log.Fatalf("query %s: %s", info.Status, info.Error)
	}
	res, err := c.Result(resp.ID)
	check(err)
	printResult(res.Columns, res.Rows)
	fmt.Printf("-- pending %dms, exec %dms, scanned %d bytes, list price $%.9f\n",
		res.PendingMs, res.ExecMs, res.BytesScanned, res.ListPrice)
}

// printSpan renders one span of the trace waterfall: indentation shows
// nesting, the +offset column is the span's start relative to the query
// root, and events (retries, speculation, cache hits) print as bullet
// lines under their span.
func printSpan(s *obs.SpanData, rootStart int64, depth int) {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%s%s", indent, s.Name)
	fmt.Printf("%-44s +%9.3fms %10.3fms%s\n", line,
		float64(s.StartUnix-rootStart)/1000, float64(s.DurationUs)/1000, attrSummary(s.Attrs))
	for _, ev := range s.Events {
		fmt.Printf("%s  • %s @+%.3fms%s\n", indent, ev.Name, float64(ev.AtUs)/1000, attrSummary(ev.Attr))
	}
	for _, c := range s.Children {
		printSpan(c, rootStart, depth+1)
	}
}

// attrSummary renders span attributes as "  k=v k=v" in sorted key order.
func attrSummary(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, attrs[k])
	}
	return " " + b.String()
}

func printResult(columns []string, rows [][]string) {
	fmt.Println(strings.Join(columns, " | "))
	fmt.Println(strings.Repeat("-", len(strings.Join(columns, " | "))))
	for i, row := range rows {
		if i == 50 {
			fmt.Printf("... (%d more rows)\n", len(rows)-50)
			break
		}
		fmt.Println(strings.Join(row, " | "))
	}
}

func need(args []string, n int, usage string) {
	if len(args) < n {
		log.Fatalf("usage: pixels-cli %s", usage)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
