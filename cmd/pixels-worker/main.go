// Command pixels-worker is the CF worker process of the Pixels-Turbo
// reproduction: it reads one JSON engine.WorkerRequest on stdin, executes
// the serialized plan fragment over its file partition against the
// request's object store, writes the result back to the store as an
// intermediate pixfile, and reports a JSON engine.WorkerResponse on stdout.
//
// The coordinator (engine.ProcessInvoker, wired through pixels-server's
// -cf-exec=process mode) launches one pixels-worker per task — the local
// stand-in for a cloud-function invocation, with the same store-based
// shuffle the real CF tier uses.
package main

import (
	"os"

	"repro/internal/engine"
)

func main() {
	os.Exit(engine.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
}
