// pixels-bench regenerates every figure and calibrated claim of the paper
// (see DESIGN.md's experiment index) and prints paper-vs-measured tables.
//
// Usage:
//
//	pixels-bench                   # run everything
//	pixels-bench -exp e2           # run one experiment (e1..e9, a1..a11)
//	pixels-bench -parallelism 8    # VM-side intra-query width for real-SQL experiments
//	pixels-bench -cache-mb 64      # object-store read cache for real-SQL experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
)

func main() {
	// A8 spawns this binary again as its CF worker processes: re-executed
	// copies skip straight into the worker loop.
	if os.Getenv("PIXELS_WORKER_PROCESS") == "1" {
		os.Exit(engine.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	if exe, err := os.Executable(); err == nil {
		bench.WorkerArgv = []string{exe}
		bench.WorkerEnv = []string{"PIXELS_WORKER_PROCESS=1"}
	}

	var exp = flag.String("exp", "", "run a single experiment (e1..e9, a1..a11)")
	var parallelism = flag.Int("parallelism", 0, "VM-side intra-query workers for real-SQL experiments, incl. merge-side joins/top-N (0 = one per CPU, 1 = serial)")
	var cacheMB = flag.Int("cache-mb", 0, "object-store read cache for real-SQL experiments, in MiB (0 = off)")
	var readAhead = flag.Int("readahead", 0, "cache read-ahead depth in blocks (0 = default, negative = off)")
	var scanPrefetch = flag.Int("scan-prefetch", 0, "row groups a draining scan decodes ahead (0 = engine default, negative = synchronous)")
	var scanBudget = flag.Int("scan-budget", 0, "process-wide cap on concurrent pipeline decode workers (0 = one per CPU, negative = unlimited)")
	var parBudget = flag.Int("par-budget", 0, "process-wide cap on extra intra-query parallel workers across concurrent queries (0 = one per CPU, negative = unlimited)")
	var vecOn = flag.Bool("vec", true, "vectorized expression kernels for real-SQL experiments; false = interpreted evaluation")
	var planCache = flag.Bool("plan-cache", false, "normalized plan cache for repeat-traffic experiments")
	var resultCacheMB = flag.Int("result-cache-mb", 0, "result cache budget in MiB for repeat-traffic experiments (0 = experiment default)")
	flag.Parse()
	bench.VMParallelism = *parallelism
	bench.CacheMB = *cacheMB
	bench.ReadAhead = *readAhead
	bench.ScanPrefetch = *scanPrefetch
	bench.ScanBudget = *scanBudget
	bench.ParallelBudget = *parBudget
	bench.Interpreted = !*vecOn
	bench.PlanCache = *planCache
	bench.ResultCacheMB = *resultCacheMB

	ran := 0
	matched := 0
	for _, e := range bench.Registry() {
		if *exp != "" && !strings.EqualFold(e.ID, *exp) {
			continue
		}
		r := e.Run()
		bench.Render(os.Stdout, r)
		ran++
		if r.ShapeOK {
			matched++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("%d/%d experiments match the paper's reported shape\n", matched, ran)
	if matched != ran {
		os.Exit(1)
	}
}
