// pixels-server runs the PixelsDB Query Server: the REST API that
// Pixels-Rover clients talk to (translate questions, submit queries at a
// service level, poll status/results, read the cost-visibility report).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	pixelsdb "repro"
	"repro/internal/admission"
	"repro/internal/billing"
)

// parseTier resolves a tier name in a flag like
// "immediate=4,relaxed=4,best=2" (accepting the short aliases imm/rel/best).
func parseTier(name string) (billing.Level, error) {
	switch strings.ToLower(name) {
	case "imm":
		return billing.Immediate, nil
	case "rel":
		return billing.Relaxed, nil
	case "best", "be":
		return billing.BestEffort, nil
	}
	return billing.ParseLevel(name)
}

// parseTierInts parses "tier=n,tier=n" flags (empty string = nil map,
// meaning built-in defaults).
func parseTierInts(flagName, s string) map[billing.Level]int {
	if s == "" {
		return nil
	}
	out := map[billing.Level]int{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			log.Fatalf("-%s: want tier=n[,tier=n...], got %q", flagName, part)
		}
		lev, err := parseTier(k)
		if err != nil {
			log.Fatalf("-%s: %v", flagName, err)
		}
		n := 0
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 0 {
			log.Fatalf("-%s: bad count %q for tier %s", flagName, v, k)
		}
		out[lev] = n
	}
	return out
}

// parseTierDurations parses "tier=dur,tier=dur" flags.
func parseTierDurations(flagName, s string) map[billing.Level]time.Duration {
	if s == "" {
		return nil
	}
	out := map[billing.Level]time.Duration{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			log.Fatalf("-%s: want tier=duration[,tier=duration...], got %q", flagName, part)
		}
		lev, err := parseTier(k)
		if err != nil {
			log.Fatalf("-%s: %v", flagName, err)
		}
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			log.Fatalf("-%s: bad duration %q for tier %s", flagName, v, k)
		}
		out[lev] = d
	}
	return out
}

func main() {
	var (
		addr     = flag.String("addr", ":8866", "listen address")
		dataDir  = flag.String("data", "", "data directory (empty = in-memory)")
		database = flag.String("db", "tpch", "default database")
		sf       = flag.Float64("sf", 0.01, "sample-data scale factor (0 = don't load)")
		token    = flag.String("token", "", "require this bearer token")
		grace    = flag.Duration("grace", 5*time.Minute, "relaxed grace period")
		vms      = flag.Int("vms", 2, "initial warm VMs")
		scaleInt = flag.Duration("autoscale", 15*time.Second, "autoscaler interval (0 = off)")
		par      = flag.Int("parallelism", 0, "VM-side intra-query workers incl. merge-side joins/top-N (0 = one per CPU, 1 = serial)")
		cacheMB  = flag.Int("cache-mb", 0, "object-store read cache size in MiB (0 = off)")
		readAh   = flag.Int("readahead", 0, "read-ahead depth in blocks (0 = default, negative = off)")
		scanPf   = flag.Int("scan-prefetch", 0, "row groups a draining scan decodes ahead (0 = default, negative = synchronous)")
		scanBud  = flag.Int("scan-budget", 0, "process-wide cap on concurrent pipeline decode workers (0 = one per CPU, negative = unlimited)")
		parBud   = flag.Int("par-budget", 0, "process-wide cap on extra intra-query parallel workers across concurrent queries (0 = one per CPU, negative = unlimited)")
		vecOn    = flag.Bool("vec", true, "vectorized expression kernels (selection-vector filters + selection-aware decode); false = interpreted evaluation")
		cfExec   = flag.String("cf-exec", "inprocess", "CF worker execution: inprocess (engine goroutines) or process (one pixels-worker OS process per task, store-based shuffle; requires -data)")
		cfWorker = flag.String("cf-worker", "pixels-worker", "worker command for -cf-exec=process")
		planCh   = flag.Bool("plan-cache", false, "cache bound optimized plans keyed on normalized SQL (repeat-traffic fast path, level 1)")
		resCh    = flag.Int("result-cache-mb", 0, "result cache budget in MiB: serve repeat queries from cached rows, billing zero bytes scanned (0 = off)")
		traceOn  = flag.Bool("trace", false, "per-query span tracing: GET /v1/query/{id}/trace and pixels-cli trace (results and bills identical either way)")
		metrics  = flag.Bool("metrics", true, "Prometheus text metrics at GET /metrics")
		slowMs   = flag.Int64("slow-query-ms", 0, "log queries whose submit-to-finish time is at least this many milliseconds (0 = off)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		admOn       = flag.Bool("admission", true, "service-level admission control: per-tier bounded queues, EDF dispatch, load shedding (false = direct submit)")
		admSlots    = flag.String("adm-slots", "", "per-tier concurrency slots, e.g. immediate=4,relaxed=4,best=2 (empty = defaults)")
		admQueue    = flag.String("adm-queue", "", "per-tier queue caps, e.g. immediate=64,relaxed=128,best=8 (empty = defaults)")
		admMaxWait  = flag.String("adm-maxwait", "", "per-tier max queue wait before shedding, e.g. immediate=2s,relaxed=60s,best=10s (empty = defaults)")
		admDeadline = flag.String("adm-deadline", "", "per-tier default completion deadlines for EDF, e.g. immediate=10s,relaxed=2m,best=10m (empty = defaults)")
		admPriority = flag.String("adm-priority", admission.PriorityStrict, "cross-tier dispatch priority: strict or weighted")
		admScaleInt = flag.Duration("adm-autoscale", 0, "autoscale the admission slot pool at this interval (0 = fixed slots)")
	)
	flag.Parse()

	opts := pixelsdb.Options{
		DataDir:            *dataDir,
		InitialVMs:         *vms,
		GracePeriod:        *grace,
		AutoscaleInterval:  *scaleInt,
		Parallelism:        *par,
		CacheSize:          int64(*cacheMB) << 20,
		CacheReadAhead:     *readAh,
		ScanPrefetch:       *scanPf,
		ScanBudget:         *scanBud,
		ParallelBudget:     *parBud,
		NoVectorize:        !*vecOn,
		CFExecution:        *cfExec,
		CFWorkerCmd:        []string{*cfWorker},
		PlanCache:          *planCh,
		ResultCacheMB:      *resCh,
		Tracing:            *traceOn,
		Metrics:            *metrics,
		SlowQueryThreshold: time.Duration(*slowMs) * time.Millisecond,
		Pprof:              *pprofOn,
	}
	if *admOn {
		opts.Admission = &admission.Config{
			Slots:    parseTierInts("adm-slots", *admSlots),
			QueueCap: parseTierInts("adm-queue", *admQueue),
			MaxWait:  parseTierDurations("adm-maxwait", *admMaxWait),
			Deadline: parseTierDurations("adm-deadline", *admDeadline),
			Priority: *admPriority,
		}
		opts.AdmissionAutoscaleInterval = *admScaleInt
	}
	db, err := pixelsdb.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *sf > 0 && !db.Engine().Catalog().HasDatabase(*database) {
		log.Printf("loading sample data into %q at SF %.3f ...", *database, *sf)
		if err := db.LoadSampleData(*database, *sf); err != nil {
			log.Fatal(err)
		}
	}

	p := db.PriceBook()
	fmt.Printf("PixelsDB query server on %s (db=%s)\n", *addr, *database)
	if *cacheMB > 0 {
		fmt.Printf("object-store read cache: %d MiB, read-ahead %d blocks\n", *cacheMB, *readAh)
	}
	if *planCh || *resCh > 0 {
		fmt.Printf("repeat-traffic fast path: plan cache %v, result cache %d MiB\n", *planCh, *resCh)
	}
	if *cfExec == "process" {
		fmt.Printf("CF execution: one %q process per worker task, store-based shuffle\n", *cfWorker)
	}
	if *admOn {
		snap := db.Admission().Snapshot()
		fmt.Printf("admission control: %d slots, %s priority (API: /v1, deprecated alias: /api)\n",
			snap.TotalSlots, *admPriority)
	}
	if *traceOn {
		fmt.Println("tracing: per-query span trees at GET /v1/query/{id}/trace")
	}
	if *metrics {
		fmt.Println("metrics: Prometheus text at GET /metrics")
	}
	fmt.Printf("service levels: immediate $%.2f/TB | relaxed $%.2f/TB (grace %s) | best-of-effort $%.2f/TB\n",
		p.ScanPricePerTBAt(pixelsdb.Immediate), p.ScanPricePerTBAt(pixelsdb.Relaxed),
		*grace, p.ScanPricePerTBAt(pixelsdb.BestEffort))
	log.Fatal(db.Serve(*addr, *database, *token))
}
