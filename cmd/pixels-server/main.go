// pixels-server runs the PixelsDB Query Server: the REST API that
// Pixels-Rover clients talk to (translate questions, submit queries at a
// service level, poll status/results, read the cost-visibility report).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	pixelsdb "repro"
)

func main() {
	var (
		addr     = flag.String("addr", ":8866", "listen address")
		dataDir  = flag.String("data", "", "data directory (empty = in-memory)")
		database = flag.String("db", "tpch", "default database")
		sf       = flag.Float64("sf", 0.01, "sample-data scale factor (0 = don't load)")
		token    = flag.String("token", "", "require this bearer token")
		grace    = flag.Duration("grace", 5*time.Minute, "relaxed grace period")
		vms      = flag.Int("vms", 2, "initial warm VMs")
		scaleInt = flag.Duration("autoscale", 15*time.Second, "autoscaler interval (0 = off)")
		par      = flag.Int("parallelism", 0, "VM-side intra-query workers incl. merge-side joins/top-N (0 = one per CPU, 1 = serial)")
		cacheMB  = flag.Int("cache-mb", 0, "object-store read cache size in MiB (0 = off)")
		readAh   = flag.Int("readahead", 0, "read-ahead depth in blocks (0 = default, negative = off)")
		scanPf   = flag.Int("scan-prefetch", 0, "row groups a draining scan decodes ahead (0 = default, negative = synchronous)")
		scanBud  = flag.Int("scan-budget", 0, "process-wide cap on concurrent pipeline decode workers (0 = one per CPU, negative = unlimited)")
		vecOn    = flag.Bool("vec", true, "vectorized expression kernels (selection-vector filters + selection-aware decode); false = interpreted evaluation")
		cfExec   = flag.String("cf-exec", "inprocess", "CF worker execution: inprocess (engine goroutines) or process (one pixels-worker OS process per task, store-based shuffle; requires -data)")
		cfWorker = flag.String("cf-worker", "pixels-worker", "worker command for -cf-exec=process")
	)
	flag.Parse()

	db, err := pixelsdb.Open(pixelsdb.Options{
		DataDir:           *dataDir,
		InitialVMs:        *vms,
		GracePeriod:       *grace,
		AutoscaleInterval: *scaleInt,
		Parallelism:       *par,
		CacheSize:         int64(*cacheMB) << 20,
		CacheReadAhead:    *readAh,
		ScanPrefetch:      *scanPf,
		ScanBudget:        *scanBud,
		NoVectorize:       !*vecOn,
		CFExecution:       *cfExec,
		CFWorkerCmd:       []string{*cfWorker},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if *sf > 0 && !db.Engine().Catalog().HasDatabase(*database) {
		log.Printf("loading sample data into %q at SF %.3f ...", *database, *sf)
		if err := db.LoadSampleData(*database, *sf); err != nil {
			log.Fatal(err)
		}
	}

	p := db.PriceBook()
	fmt.Printf("PixelsDB query server on %s (db=%s)\n", *addr, *database)
	if *cacheMB > 0 {
		fmt.Printf("object-store read cache: %d MiB, read-ahead %d blocks\n", *cacheMB, *readAh)
	}
	if *cfExec == "process" {
		fmt.Printf("CF execution: one %q process per worker task, store-based shuffle\n", *cfWorker)
	}
	fmt.Printf("service levels: immediate $%.2f/TB | relaxed $%.2f/TB (grace %s) | best-of-effort $%.2f/TB\n",
		p.ScanPricePerTBAt(pixelsdb.Immediate), p.ScanPricePerTBAt(pixelsdb.Relaxed),
		*grace, p.ScanPricePerTBAt(pixelsdb.BestEffort))
	log.Fatal(db.Serve(*addr, *database, *token))
}
