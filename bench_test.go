// Benchmarks regenerating every figure and calibrated claim of the paper.
// Each benchmark runs one experiment from the index in DESIGN.md and
// reports its headline numbers as custom metrics; `go test -bench=.`
// therefore reproduces the full evaluation. cmd/pixels-bench prints the
// same experiments as human-readable paper-vs-measured tables.
package pixelsdb

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
)

// runExperiment executes one experiment per benchmark iteration and fails
// the benchmark if the measured shape diverges from the paper's claim.
func runExperiment(b *testing.B, id string) bench.Result {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		for _, e := range bench.Registry() {
			if e.ID == id {
				last = e.Run()
			}
		}
	}
	if last.ID == "" {
		b.Fatalf("experiment %s not found", id)
	}
	if !last.ShapeOK {
		b.Fatalf("experiment %s diverges from the paper: %s", id, last.Shape)
	}
	return last
}

// metric extracts a numeric cell like "2.41x" or "79 (79%)" from a result
// row label.
func metric(r bench.Result, rowPrefix string, col int) float64 {
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], rowPrefix) && col < len(row) {
			s := strings.TrimSuffix(strings.Fields(row[col])[0], "x")
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// BenchmarkE1Survey regenerates Figure 1 (user-study percentages).
func BenchmarkE1Survey(b *testing.B) {
	r := runExperiment(b, "E1")
	b.ReportMetric(metric(r, "Fig 1a", 1), "pct-per-query-levels")
	b.ReportMetric(metric(r, "Fig 1b", 1)+42, "nl-positive-users") // 42+42
}

// BenchmarkE2RelaxedVsImmediate regenerates the Sec. III-B 2-5x claim.
func BenchmarkE2RelaxedVsImmediate(b *testing.B) {
	r := runExperiment(b, "E2")
	b.ReportMetric(metric(r, "ratio", 6), "cost-ratio-x")
}

// BenchmarkE3BestEffortVsImmediate regenerates the Sec. III-B >10x claim.
func BenchmarkE3BestEffortVsImmediate(b *testing.B) {
	r := runExperiment(b, "E3")
	b.ReportMetric(metric(r, "ratio", 5), "cost-ratio-x")
}

// BenchmarkE4Elasticity regenerates the Sec. II elasticity/price claims.
func BenchmarkE4Elasticity(b *testing.B) {
	runExperiment(b, "E4")
}

// BenchmarkE5SpikeAcceleration regenerates the Sec. III-A spike scenario.
func BenchmarkE5SpikeAcceleration(b *testing.B) {
	r := runExperiment(b, "E5")
	b.ReportMetric(metric(r, "p99 speedup", 2), "p99-speedup-x")
}

// BenchmarkE6PriceTable regenerates the $5/$2/$0.5 per TB price table.
func BenchmarkE6PriceTable(b *testing.B) {
	runExperiment(b, "E6")
}

// BenchmarkE7TextToSQL regenerates the text-to-SQL quality table.
func BenchmarkE7TextToSQL(b *testing.B) {
	runExperiment(b, "E7")
}

// BenchmarkE8PendingTimes regenerates the pending-time guarantee table.
func BenchmarkE8PendingTimes(b *testing.B) {
	runExperiment(b, "E8")
}

// BenchmarkE9CostReport regenerates the Report-tab aggregations.
func BenchmarkE9CostReport(b *testing.B) {
	runExperiment(b, "E9")
}

// BenchmarkA1LazyScaleIn regenerates the footnote-3 scale-in ablation.
func BenchmarkA1LazyScaleIn(b *testing.B) {
	runExperiment(b, "A1")
}

// BenchmarkA2GraceSweep regenerates the grace-period sweep ablation.
func BenchmarkA2GraceSweep(b *testing.B) {
	runExperiment(b, "A2")
}

// BenchmarkA3Policies regenerates the scaling-policy comparison ablation.
func BenchmarkA3Policies(b *testing.B) {
	runExperiment(b, "A3")
}

// BenchmarkA4StorageAblation regenerates the encoding/zone-map ablation.
func BenchmarkA4StorageAblation(b *testing.B) {
	runExperiment(b, "A4")
}

// BenchmarkA5IntraQueryParallel regenerates the VM-side intra-query
// parallelism experiment (serial vs per-CPU-width execution of the same
// plan, identical results and billing bytes).
func BenchmarkA5IntraQueryParallel(b *testing.B) {
	runExperiment(b, "A5")
}

// BenchmarkA6MergeSideParallel regenerates the merge-side parallelism
// experiment (shared-build join, worker top-N).
func BenchmarkA6MergeSideParallel(b *testing.B) {
	runExperiment(b, "A6")
}

// BenchmarkA7VectorizedEval regenerates the vectorized-vs-interpreted
// evaluation ablation.
func BenchmarkA7VectorizedEval(b *testing.B) {
	runExperiment(b, "A7")
}

// BenchmarkA8DistributedCF regenerates the multi-process CF execution
// experiment (serialized worker fragments, object-store shuffle, identical
// rows and billed bytes to serial execution).
func BenchmarkA8DistributedCF(b *testing.B) {
	runExperiment(b, "A8")
}

// BenchmarkA10RepeatTraffic regenerates the repeat-traffic fast-path
// experiment (plan + result cache vs cold planning: identical rows, zero
// bytes billed on warm repeats, warm p50 below the uncached p50).
func BenchmarkA10RepeatTraffic(b *testing.B) {
	runExperiment(b, "A10")
}

// BenchmarkRepeatQueryTracing re-runs the warm-repeat fast path (plan +
// result cache) with per-query span tracing off and on. The pair is the
// observability overhead budget: tracing must stay within a few percent
// of the untraced path, because it is sold as cheap enough to leave on.
// TestTracingOverheadRepeatQuery asserts the <5% bound when the CI
// bench-smoke job sets PIXELS_OVERHEAD_GATE=1.
func BenchmarkRepeatQueryTracing(b *testing.B) {
	const stmt = "SELECT o_orderpriority, COUNT(*) FROM orders " +
		"GROUP BY o_orderpriority ORDER BY o_orderpriority"
	for _, cfg := range []struct {
		name    string
		tracing bool
	}{
		{"tracing-off", false},
		{"tracing-on", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, err := Open(Options{PlanCache: true, ResultCacheMB: 8, Tracing: cfg.tracing})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.LoadSampleData("tpch", 0.01); err != nil {
				b.Fatal(err)
			}
			var lastID string
			submit := func() {
				q, err := db.Submit("tpch", stmt, Immediate)
				if err != nil {
					b.Fatal(err)
				}
				<-q.Done()
				if q.Err() != nil {
					b.Fatal(q.Err())
				}
				lastID = q.ID
			}
			submit() // cold fill: every timed iteration below is a warm repeat
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit()
			}
			b.StopTimer()
			// Sanity: the traced variant must actually record traces and
			// the untraced one must not, or the pair measures nothing.
			if got := db.QueryTrace(lastID) != nil; got != cfg.tracing {
				b.Fatalf("trace recorded = %v with tracing = %v", got, cfg.tracing)
			}
		})
	}
}

// BenchmarkRepeatQuery measures one warm repeat submission of an analytic
// query through the full coordinator path under the three cache
// configurations: no caches (parse + bind + optimize + scan per repeat),
// plan cache only (skip parse/bind/optimize, still scan), and the full
// fast path (result-cache hit, no object-store traffic). The ns/op and
// allocs/op ratio between the first and last sub-benchmark is the
// headline repeat-traffic speedup.
func BenchmarkRepeatQuery(b *testing.B) {
	const stmt = "SELECT o_orderpriority, COUNT(*) FROM orders " +
		"GROUP BY o_orderpriority ORDER BY o_orderpriority"
	configs := []struct {
		name string
		opts Options
	}{
		{"caches-off", Options{}},
		{"plan-cache-only", Options{PlanCache: true}},
		{"plan+result-cache", Options{PlanCache: true, ResultCacheMB: 8}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			db, err := Open(cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := db.LoadSampleData("tpch", 0.01); err != nil {
				b.Fatal(err)
			}
			submit := func() {
				q, err := db.Submit("tpch", stmt, Immediate)
				if err != nil {
					b.Fatal(err)
				}
				<-q.Done()
				if q.Err() != nil {
					b.Fatal(q.Err())
				}
			}
			submit() // cold fill: every timed iteration below is a warm repeat
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit()
			}
		})
	}
}
